#include "src/scenario/registry.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "src/scenario/cache.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace floretsim::scenario {
namespace {

[[noreturn]] void bad_value(std::string_view key, std::string_view value,
                            const std::string& why) {
    throw std::invalid_argument("--set " + std::string(key) + "=" +
                                std::string(value) + ": " + why);
}

double parse_double(std::string_view key, std::string_view value) {
    double v = 0.0;
    const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc() || p != value.data() + value.size())
        bad_value(key, value, "expected a number");
    return v;
}

/// traffic_scale accepts the bench-doc notation "1/128" as well as plain
/// decimals.
double parse_ratio(std::string_view key, std::string_view value) {
    const std::size_t slash = value.find('/');
    if (slash == std::string_view::npos) return parse_double(key, value);
    const double num = parse_double(key, value.substr(0, slash));
    const double den = parse_double(key, value.substr(slash + 1));
    if (den == 0.0) bad_value(key, value, "division by zero");
    return num / den;
}

std::int64_t parse_int(std::string_view key, std::string_view value) {
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc() || p != value.data() + value.size())
        bad_value(key, value, "expected an integer");
    return v;
}

std::uint64_t parse_uint(std::string_view key, std::string_view value) {
    std::uint64_t v = 0;
    const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc() || p != value.data() + value.size())
        bad_value(key, value, "expected a non-negative integer");
    return v;
}

std::pair<std::int32_t, std::int32_t> parse_grid(std::string_view key,
                                                 std::string_view value) {
    // Same strict parser as the JSON spec forms (grid_from_string), so a
    // grid that works in a spec file works on the CLI and vice versa.
    try {
        return grid_from_string(std::string(value));
    } catch (const std::invalid_argument&) {
        bad_value(key, value, "expected WxH, e.g. 12x12");
    }
}

std::vector<core::experiment::Arch> parse_archs(std::string_view key,
                                                std::string_view value) {
    std::vector<core::experiment::Arch> archs;
    for (const auto& name : split_csv(value)) {
        try {
            archs.push_back(arch_from_string(name));
        } catch (const std::invalid_argument& e) {
            bad_value(key, value, e.what());
        }
    }
    if (archs.empty()) bad_value(key, value, "empty architecture list");
    return archs;
}

std::vector<std::int32_t> parse_positive_int32_list(std::string_view key,
                                                    std::string_view value,
                                                    const char* what) {
    std::vector<std::int32_t> out;
    for (const auto& item : split_csv(value)) {
        const std::int64_t v = parse_int(key, item);
        if (v <= 0 || v > INT32_MAX)
            bad_value(key, value,
                      std::string(what) + " must be a positive int32");
        out.push_back(static_cast<std::int32_t>(v));
    }
    if (out.empty()) bad_value(key, value, std::string("empty ") + what + " list");
    return out;
}

/// Applies an EvalConfig mutation everywhere the spec carries one. A
/// sweep spec with an empty eval list means "the experiment default", so
/// the default is materialized first — otherwise the override would be
/// silently lost at expand() time. Returns false for kinds that carry no
/// EvalConfig at all (the annealing and Transformer studies never run the
/// flit simulator), so eval overrides don't pretend to land on them.
template <typename Fn>
bool mutate_evals(SpecVariant& spec, Fn&& fn) {
    if (auto* sweep = std::get_if<core::SweepSpec>(&spec)) {
        if (sweep->evals.empty())
            sweep->evals = {core::experiment::default_eval_config()};
        for (auto& eval : sweep->evals) fn(eval);
        return true;
    }
    if (auto* grid = std::get_if<ServeGridSpec>(&spec)) {
        fn(grid->base.config.eval);
        return true;
    }
    if (auto* cluster = std::get_if<ClusterSpec>(&spec)) {
        fn(cluster->base.config.eval);
        return true;
    }
    if (auto* scaling = std::get_if<ScalingSpec>(&spec)) {
        fn(scaling->eval);
        return true;
    }
    return false;
}

}  // namespace

std::vector<std::string> split_csv(std::string_view value) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string_view item = value.substr(
            start, comma == std::string_view::npos ? std::string_view::npos
                                                   : comma - start);
        if (!item.empty()) out.emplace_back(item);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    return out;
}

const char* spec_kind_name(const SpecVariant& spec) {
    struct Namer {
        const char* operator()(const core::SweepSpec&) const { return "sweep"; }
        const char* operator()(const ServeGridSpec&) const { return "serve_grid"; }
        const char* operator()(const ClusterSpec&) const { return "cluster"; }
        const char* operator()(const Moo3dSpec&) const { return "moo3d"; }
        const char* operator()(const TransformerSpec&) const { return "transformer"; }
        const char* operator()(const ScalingSpec&) const { return "scaling"; }
    };
    return std::visit(Namer{}, spec);
}

util::Json to_json(const SpecVariant& spec) {
    return std::visit([](const auto& s) { return to_json(s); }, spec);
}

SpecVariant spec_from_json(const util::Json& j, const std::string& kind) {
    if (kind == "sweep") return sweep_spec_from_json(j);
    if (kind == "serve_grid") return serve_grid_spec_from_json(j);
    if (kind == "cluster") return cluster_spec_from_json(j);
    if (kind == "moo3d") return moo3d_spec_from_json(j);
    if (kind == "transformer") return transformer_spec_from_json(j);
    if (kind == "scaling") return scaling_spec_from_json(j);
    throw std::invalid_argument(
        "unknown spec kind \"" + kind +
        "\" (expected sweep|serve_grid|cluster|moo3d|transformer|scaling)");
}

std::uint64_t spec_hash(const SpecVariant& spec) {
    std::uint64_t h = util::fnv1a(kCacheFormatVersion);
    h = util::fnv1a(":spec:", h);
    h = util::fnv1a(spec_kind_name(spec), h);
    h = util::fnv1a(":", h);
    return util::fnv1a(util::json_serialize_compact(to_json(spec)), h);
}

std::vector<core::SweepPoint> scaling_points(const ScalingSpec& s) {
    std::vector<core::SweepPoint> points;
    points.reserve(s.sides.size() * s.archs.size());
    for (const auto side : s.sides) {
        // A fresh generator per side: each side's mix depends only on
        // (mix_seed, side), never on the position in the sides list.
        util::Rng mix_rng(s.mix_seed);
        std::string label = "S";
        label += std::to_string(side);
        const auto mix = workload::random_mix(mix_rng, 3 + side, label);
        for (const auto arch : s.archs) {
            core::SweepPoint p;
            p.arch = arch;
            p.width = side;
            p.height = side;
            p.mix = mix;
            p.eval = s.eval;
            p.swap_seed = s.swap_seed;
            p.greedy_max_gap = s.greedy_max_gap;
            p.run_seed = s.run_seed;
            points.push_back(std::move(p));
        }
    }
    return points;
}

std::optional<std::vector<core::SweepPoint>> cacheable_points(
    const SpecVariant& spec) {
    if (const auto* sweep = std::get_if<core::SweepSpec>(&spec))
        return sweep->expand();
    if (const auto* scaling = std::get_if<ScalingSpec>(&spec))
        return scaling_points(*scaling);
    return std::nullopt;
}

void Registry::add(Scenario s) {
    if (!s.report)
        throw std::invalid_argument("scenario \"" + s.name +
                                    "\" has no report function");
    if (find(s.name) != nullptr)
        throw std::invalid_argument("duplicate scenario \"" + s.name + "\"");
    scenarios_.push_back(std::move(s));
}

const Scenario* Registry::find(const std::string& name) const {
    const auto it = std::find_if(scenarios_.begin(), scenarios_.end(),
                                 [&](const Scenario& s) { return s.name == name; });
    return it == scenarios_.end() ? nullptr : &*it;
}

const Scenario& Registry::at(const std::string& name) const {
    if (const Scenario* s = find(name)) return *s;
    std::string known;
    for (const auto& s : scenarios_) {
        if (!known.empty()) known += ", ";
        known += s.name;
    }
    throw std::invalid_argument("unknown scenario \"" + name + "\" (registered: " +
                                known + ")");
}

void set_seed(SpecVariant& spec, std::uint64_t seed) {
    if (auto* sweep = std::get_if<core::SweepSpec>(&spec))
        sweep->run_seed = seed;
    else if (auto* grid = std::get_if<ServeGridSpec>(&spec))
        grid->base.base_seed = seed;
    else if (auto* cluster = std::get_if<ClusterSpec>(&spec))
        cluster->base.base_seed = seed;
    else if (auto* moo = std::get_if<Moo3dSpec>(&spec))
        moo->seed = seed;
    else if (auto* scaling = std::get_if<ScalingSpec>(&spec))
        scaling->mix_seed = seed;
    // TransformerSpec: fully deterministic, nothing to seed.
}

std::uint64_t effective_seed(const SpecVariant& spec) {
    if (const auto* sweep = std::get_if<core::SweepSpec>(&spec))
        return sweep->run_seed;
    if (const auto* grid = std::get_if<ServeGridSpec>(&spec))
        return grid->base.base_seed;
    if (const auto* cluster = std::get_if<ClusterSpec>(&spec))
        return cluster->base.base_seed;
    if (const auto* moo = std::get_if<Moo3dSpec>(&spec)) return moo->seed;
    if (const auto* scaling = std::get_if<ScalingSpec>(&spec))
        return scaling->mix_seed;
    return 0;
}

bool is_eval_override_key(std::string_view key) {
    return key == "traffic_scale" || key == "max_cycles" ||
           key == "injection_rate" || key == "sim_core";
}

std::string override_keys_help() {
    return "grid, grids, archs, mixes, traffic_scale, max_cycles, "
           "injection_rate, sim_core, swap_seed, greedy_max_gap, seed, "
           "max_requests, replications, loads, fabrics, max_batch, balance, "
           "iterations, workloads, models, batches, sides, lambdas";
}

bool apply_override(SpecVariant& spec, std::string_view key,
                    std::string_view value) {
    auto* sweep = std::get_if<core::SweepSpec>(&spec);
    auto* grid = std::get_if<ServeGridSpec>(&spec);
    auto* cluster = std::get_if<ClusterSpec>(&spec);
    auto* moo = std::get_if<Moo3dSpec>(&spec);
    auto* transformer = std::get_if<TransformerSpec>(&spec);
    auto* scaling = std::get_if<ScalingSpec>(&spec);
    // The serving kinds share a base ServeSpec; overrides that land on it
    // apply identically to both.
    serve::ServeSpec* serve_base =
        grid ? &grid->base : (cluster ? &cluster->base : nullptr);

    if (key == "grid" || key == "grids") {
        std::vector<std::pair<std::int32_t, std::int32_t>> grids;
        for (const auto& g : split_csv(value)) grids.push_back(parse_grid(key, g));
        if (grids.empty()) bad_value(key, value, "empty grid list");
        if (sweep) {
            sweep->grids = std::move(grids);
            return true;
        }
        if (grids.size() != 1)
            bad_value(key, value, "this scenario kind takes exactly one grid");
        if (serve_base) {
            serve_base->width = grids.front().first;
            serve_base->height = grids.front().second;
            return true;
        }
        if (moo) {
            moo->width = grids.front().first;
            moo->height = grids.front().second;
            return true;
        }
        if (transformer) {
            transformer->hetero.macro_width = grids.front().first;
            transformer->hetero.macro_height = grids.front().second;
            return true;
        }
        // Scaling systems are square by construction: sides defines them.
        return false;
    }
    if (key == "archs") {
        auto archs = parse_archs(key, value);
        if (sweep) {
            sweep->archs = std::move(archs);
            return true;
        }
        if (grid) {
            grid->archs = std::move(archs);
            return true;
        }
        if (cluster) {
            if (archs.size() != 1)
                bad_value(key, value,
                          "the cluster scenario replicates one architecture");
            cluster->base.arch = archs.front();
            return true;
        }
        if (scaling) {
            scaling->archs = std::move(archs);
            return true;
        }
        return false;
    }
    if (key == "mixes") {
        if (!sweep) return false;
        std::vector<workload::ConcurrentMix> mixes;
        for (const auto& name : split_csv(value)) {
            try {
                mixes.push_back(mix_from_json(util::Json(name)));
            } catch (const std::invalid_argument& e) {
                bad_value(key, value, e.what());
            }
        }
        if (mixes.empty()) bad_value(key, value, "empty mix list");
        sweep->mixes = std::move(mixes);
        return true;
    }
    if (key == "traffic_scale") {
        const double scale = parse_ratio(key, value);
        if (scale <= 0.0 || scale > 1.0)
            bad_value(key, value, "traffic scale must be in (0, 1]");
        return mutate_evals(spec,
                            [&](core::EvalConfig& e) { e.traffic_scale = scale; });
    }
    if (key == "max_cycles") {
        const std::int64_t cap = parse_int(key, value);
        if (cap <= 0) bad_value(key, value, "cycle cap must be positive");
        return mutate_evals(spec,
                            [&](core::EvalConfig& e) { e.sim.max_cycles = cap; });
    }
    if (key == "injection_rate") {
        const double rate = parse_double(key, value);
        if (rate <= 0.0) bad_value(key, value, "injection rate must be positive");
        return mutate_evals(
            spec, [&](core::EvalConfig& e) { e.sim.injection_rate = rate; });
    }
    if (key == "sim_core") {
        noc::SimCore core = noc::SimCore::kEventHorizon;
        try {
            core = sim_core_from_json(util::Json(std::string(value)));
        } catch (const std::invalid_argument& e) {
            bad_value(key, value, e.what());
        }
        return mutate_evals(spec, [&](core::EvalConfig& e) { e.sim.core = core; });
    }
    if (key == "swap_seed") {
        const std::uint64_t seed = parse_uint(key, value);
        if (sweep) {
            sweep->swap_seed = seed;
            return true;
        }
        if (serve_base) {
            serve_base->swap_seed = seed;
            return true;
        }
        if (scaling) {
            scaling->swap_seed = seed;
            return true;
        }
        return false;
    }
    if (key == "greedy_max_gap") {
        const std::int64_t gap = parse_int(key, value);
        if (gap < INT32_MIN || gap > INT32_MAX)
            bad_value(key, value, "out of int32 range");
        if (sweep) {
            sweep->greedy_max_gap = static_cast<std::int32_t>(gap);
            return true;
        }
        if (serve_base) {
            serve_base->greedy_max_gap = static_cast<std::int32_t>(gap);
            return true;
        }
        if (scaling) {
            scaling->greedy_max_gap = static_cast<std::int32_t>(gap);
            return true;
        }
        return false;
    }
    if (key == "seed") {
        if (transformer) return false;  // deterministic: see set_seed
        set_seed(spec, parse_uint(key, value));
        return true;
    }
    if (key == "iterations") {
        if (!moo) return false;
        const std::int64_t n = parse_int(key, value);
        if (n < 0 || n > INT32_MAX)
            bad_value(key, value, "iteration count must be a non-negative int32");
        moo->iterations = static_cast<std::int32_t>(n);
        return true;
    }
    if (key == "workloads") {
        if (!moo) return false;
        std::vector<std::string> ids;
        for (const auto& id : split_csv(value)) {
            try {
                (void)workload::workload_by_id(id);
            } catch (const std::exception& e) {
                bad_value(key, value, e.what());
            }
            ids.push_back(id);
        }
        if (ids.empty()) bad_value(key, value, "empty workload list");
        moo->workloads = std::move(ids);
        return true;
    }
    if (key == "models") {
        if (!transformer) return false;
        std::vector<std::string> models;
        for (const auto& name : split_csv(value)) {
            try {
                (void)transformer_model_from_name(name);
            } catch (const std::invalid_argument& e) {
                bad_value(key, value, e.what());
            }
            models.push_back(ascii_lower(name));
        }
        if (models.empty()) bad_value(key, value, "empty model list");
        transformer->models = std::move(models);
        return true;
    }
    if (key == "batches") {
        if (!transformer) return false;
        transformer->batches = parse_positive_int32_list(key, value, "batch");
        return true;
    }
    if (key == "sides") {
        if (!scaling) return false;
        scaling->sides = parse_positive_int32_list(key, value, "side");
        return true;
    }
    if (key == "lambdas") {
        if (!scaling) return false;
        scaling->lambdas = parse_positive_int32_list(key, value, "lambda");
        return true;
    }
    if (key == "max_requests") {
        if (!serve_base) return false;
        const std::int64_t n = parse_int(key, value);
        if (n <= 0) bad_value(key, value, "request count must be positive");
        serve_base->config.arrivals.max_requests = n;
        return true;
    }
    if (key == "replications") {
        if (!serve_base) return false;
        const std::int64_t n = parse_int(key, value);
        if (n <= 0 || n > INT32_MAX)
            bad_value(key, value, "replication count must be a positive int32");
        serve_base->replications = static_cast<std::int32_t>(n);
        return true;
    }
    if (key == "loads") {
        if (!grid && !cluster) return false;
        std::vector<double> loads;
        for (const auto& l : split_csv(value)) loads.push_back(parse_double(key, l));
        if (loads.empty()) bad_value(key, value, "empty load list");
        for (const double l : loads)
            if (l <= 0.0) bad_value(key, value, "offered loads must be positive");
        if (grid)
            grid->loads_per_mcycle = std::move(loads);
        else
            cluster->loads_per_mcycle = std::move(loads);
        return true;
    }
    if (key == "fabrics") {
        if (!cluster) return false;
        cluster->cluster_sizes =
            parse_positive_int32_list(key, value, "cluster size");
        return true;
    }
    if (key == "max_batch") {
        if (!cluster) return false;
        cluster->batch_caps = parse_positive_int32_list(key, value, "batch cap");
        return true;
    }
    if (key == "balance") {
        if (!cluster) return false;
        try {
            cluster->balance =
                balance_policy_from_json(util::Json(std::string(value)));
        } catch (const std::invalid_argument& e) {
            bad_value(key, value, e.what());
        }
        return true;
    }
    throw std::invalid_argument("--set: unknown key \"" + std::string(key) +
                                "\" (supported: " + override_keys_help() + ")");
}

}  // namespace floretsim::scenario
