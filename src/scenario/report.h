#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sweep.h"
#include "src/util/json.h"
#include "src/util/table.h"

namespace floretsim::scenario {

/// Machine-readable report of one bench/scenario run: the printed tables
/// plus scalar metrics, rendered as a JSON document. Lives in the library
/// (not bench/) because scenario report functions produce it and the
/// floretsim_run driver merges several of them into one document via
/// to_value(). Table cells are emitted as strings exactly as printed;
/// metrics are numbers (non-finite values serialize as null so anomalous
/// runs stay parseable — JSON has no nan/inf literals).
class JsonReport {
public:
    explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

    void add_table(const std::string& key, const util::TextTable& table);
    void add_metric(const std::string& key, double value);

    /// Adds (or overwrites) one provenance field in the report's
    /// "run_info" object. Build/compiler/git/sim-core fields are always
    /// present; callers layer run-specific facts (effective seed, thread
    /// count) on top. Overwrite-on-rekey keeps a report that is finished
    /// in two stages (scenario body, then the driver) from emitting
    /// duplicate keys.
    void set_run_info(const std::string& key, util::Json value);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// The report as a JSON value — the merge point for multi-scenario
    /// documents (floretsim_run nests one of these per scenario).
    [[nodiscard]] util::Json to_value() const;

    /// Serializes the report document.
    [[nodiscard]] std::string to_json() const;

    /// Writes to `path` when non-empty (empty path is silently a no-op).
    /// Returns false if the file could not be written.
    bool write(const std::string& path) const;

private:
    struct Table {
        std::string key;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };
    std::string name_;
    std::vector<Table> tables_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, util::Json>> run_info_;
};

/// Adds the per-point wall-clock spread of a sweep to the report —
/// point_seconds_{min,mean,max} and point_imbalance (max/mean, 1.0 =
/// perfectly balanced) — the load-balance signal for tuning how sweeps
/// partition across workers. Empty inputs add nothing; an all-zero
/// (degenerate) timing vector reports imbalance 1.0 rather than NaN.
void add_point_timing(JsonReport& report, const core::SweepResult& sweep);
/// Same signal for SweepEngine::timed_map fan-outs.
void add_point_timing(JsonReport& report, std::span<const double> point_seconds);

}  // namespace floretsim::scenario
