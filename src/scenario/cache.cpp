#include "src/scenario/cache.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "src/obs/metrics.h"
#include "src/scenario/spec_json.h"
#include "src/util/hash.h"
#include "src/util/json.h"

namespace floretsim::scenario {
namespace fs = std::filesystem;

std::uint64_t point_hash(const core::SweepPoint& point) {
    std::uint64_t h = util::fnv1a(kCacheFormatVersion);
    h = util::fnv1a(":point:", h);
    return util::fnv1a(util::json_serialize_compact(to_json(point)), h);
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
    if (dir_.empty())
        throw std::runtime_error("result cache: empty directory path");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw std::runtime_error("result cache: cannot create directory " + dir_);
    // Writability probe up front — a read-only cache dir should fail the
    // run at startup, not silently degrade every store.
    const std::string marker = dir_ + "/CACHEDIR.floretsim";
    std::ofstream f(marker);
    f << kCacheFormatVersion << '\n';
    if (!f)
        throw std::runtime_error("result cache: directory " + dir_ +
                                 " is not writable");
    // Register the counters so a --metrics-out snapshot always carries
    // them, even for a run with zero cache traffic.
    auto& m = obs::MetricsRegistry::global();
    m.add("result_cache.hits", 0);
    m.add("result_cache.misses", 0);
    m.add("result_cache.stores", 0);
    m.add("result_cache.evictions", 0);
}

std::string ResultCache::entry_path(std::uint64_t hash) const {
    return dir_ + "/" + util::hash_hex(hash) + ".json";
}

bool ResultCache::contains_hash(std::uint64_t hash) const {
    std::error_code ec;
    return fs::is_regular_file(entry_path(hash), ec);
}

bool ResultCache::probe(const core::SweepPoint& point) {
    if (contains_hash(point_hash(point))) return true;
    misses_.fetch_add(1);
    obs::MetricsRegistry::global().add("result_cache.misses");
    return false;
}

std::optional<core::SweepRow> ResultCache::lookup(const core::SweepPoint& point) {
    const std::string path = entry_path(point_hash(point));
    const auto evict = [&] {
        std::error_code ec;
        fs::remove(path, ec);
        evictions_.fetch_add(1);
        obs::MetricsRegistry::global().add("result_cache.evictions");
    };
    std::ifstream f(path);
    if (!f) {
        evict();
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    try {
        core::SweepRow row = sweep_row_from_json(util::json_parse(buf.str()));
        // Hash-collision / stale-entry guard: the stored point must be
        // the requested point, or the entry is lying about its identity.
        if (!(row.point == point)) {
            evict();
            return std::nullopt;
        }
        hits_.fetch_add(1);
        obs::MetricsRegistry::global().add("result_cache.hits");
        return row;
    } catch (const std::exception&) {
        evict();
        return std::nullopt;
    }
}

void ResultCache::store(const core::SweepPoint& point, const core::SweepRow& row) {
    const std::string path = entry_path(point_hash(point));
    // Atomic publish: write a process-unique temp file, then rename over
    // the final name — concurrent readers (other shards, other runs
    // sharing the cache) never see a torn entry. Best-effort: a failed
    // store costs a future recompute, never the current sweep.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream f(tmp);
        f << util::json_serialize_compact(to_json(row)) << '\n';
        if (!f) {
            std::error_code ec;
            fs::remove(tmp, ec);
            obs::MetricsRegistry::global().add("result_cache.store_failures");
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        obs::MetricsRegistry::global().add("result_cache.store_failures");
        return;
    }
    stores_.fetch_add(1);
    obs::MetricsRegistry::global().add("result_cache.stores");
}

}  // namespace floretsim::scenario
