#include "src/scenario/shard.h"

#include <sys/wait.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "src/scenario/spec_json.h"
#include "src/util/json.h"

namespace floretsim::scenario {
namespace {

/// Self-deleting scratch directory for the coordinator's points file.
struct TempDir {
    std::string path;

    TempDir() {
        std::string templ =
            (std::filesystem::temp_directory_path() / "floretsim-shard-XXXXXX")
                .string();
        if (!mkdtemp(templ.data()))
            throw std::runtime_error("shard: mkdtemp failed for " + templ);
        path = templ;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
};

/// POSIX-shell single-quoting for the popen command line.
std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

std::int32_t parse_int32(std::string_view text, const char* what) {
    std::int32_t v = 0;
    const auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || p != text.data() + text.size())
        throw std::invalid_argument(std::string(what) + " \"" +
                                    std::string(text) + "\" is not an integer");
    return v;
}

}  // namespace

// ---- Shard planning ---------------------------------------------------------

std::vector<std::size_t> shard_indices(std::size_t n_points, std::int32_t shard,
                                       std::int32_t n_shards) {
    if (n_shards < 1)
        throw std::invalid_argument("shard count must be >= 1, got " +
                                    std::to_string(n_shards));
    if (shard < 0 || shard >= n_shards)
        throw std::invalid_argument("shard index " + std::to_string(shard) +
                                    " out of range for " +
                                    std::to_string(n_shards) + " shards");
    std::vector<std::size_t> indices;
    for (std::size_t i = static_cast<std::size_t>(shard); i < n_points;
         i += static_cast<std::size_t>(n_shards))
        indices.push_back(i);
    return indices;
}

std::pair<std::int32_t, std::int32_t> parse_shard_arg(const std::string& s) {
    const std::size_t slash = s.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size())
        throw std::invalid_argument("--shard expects i/N (0-based), got \"" + s +
                                    "\"");
    const std::int32_t shard =
        parse_int32(std::string_view(s).substr(0, slash), "shard index");
    const std::int32_t n_shards =
        parse_int32(std::string_view(s).substr(slash + 1), "shard count");
    (void)shard_indices(0, shard, n_shards);  // range-check i/N
    return {shard, n_shards};
}

std::int32_t clamp_worker_threads(std::int32_t requested, std::size_t n_points,
                                  std::ostream& err) {
    if (requested < 0)
        throw std::invalid_argument("--threads must be >= 0, got " +
                                    std::to_string(requested));
    if (requested == 0) return 0;  // hardware concurrency
    std::int32_t limit = kMaxWorkerThreads;
    if (n_points > 0 && n_points < static_cast<std::size_t>(limit))
        limit = static_cast<std::int32_t>(n_points);
    if (requested > limit) {
        err << "worker: clamping --threads " << requested << " to " << limit
            << " (" << (limit == kMaxWorkerThreads ? "worker thread cap"
                                                   : "one thread per point")
            << ")\n";
        return limit;
    }
    return requested;
}

// ---- The worker protocol ----------------------------------------------------

std::vector<core::SweepPoint> points_from_text(std::string_view text,
                                               const std::string& context) {
    util::Json doc;
    try {
        doc = util::json_parse(text);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(context + ": " + e.what());
    }
    std::vector<core::SweepPoint> points;
    try {
        points = sweep_points_from_json(doc);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(context + ": " + e.what());
    }
    if (points.empty())
        throw std::invalid_argument(context +
                                    ": point list is empty — a worker with no "
                                    "work is a coordinator bug");
    return points;
}

std::string worker_row_line(std::size_t index, const core::SweepRow& row) {
    util::Json j = util::Json::object();
    j.set("index", static_cast<std::uint64_t>(index));
    j.set("row", to_json(row));
    return util::json_serialize_compact(j);
}

IndexedRow worker_row_from_line(std::string_view line) {
    util::Json j;
    try {
        j = util::json_parse(line);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("row line: ") + e.what());
    }
    if (j.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("row line: expected an object, got " +
                                    std::string(j.kind_name()));
    for (const auto& [key, value] : j.as_object()) {
        (void)value;
        if (key != "index" && key != "row")
            throw std::invalid_argument("row line: unknown key \"" + key + "\"");
    }
    const util::Json* index = j.find("index");
    const util::Json* row = j.find("row");
    if (!index || !row)
        throw std::invalid_argument("row line: need both \"index\" and \"row\"");
    IndexedRow out;
    out.index = static_cast<std::size_t>(index->as_uint());
    out.row = sweep_row_from_json(*row);
    return out;
}

std::size_t run_worker_points(core::SweepEngine& engine,
                              const std::vector<core::SweepPoint>& points,
                              const std::vector<std::size_t>& indices,
                              std::ostream& rows_out, std::ostream& err) {
    for (const std::size_t i : indices)
        if (i >= points.size())
            throw std::invalid_argument("worker: shard index " +
                                        std::to_string(i) + " out of range for " +
                                        std::to_string(points.size()) + " points");
    struct Failure {
        std::size_t index;
        std::string what;
    };
    std::mutex mu;
    std::vector<Failure> failures;
    (void)engine.map(indices.size(), [&](std::size_t k) -> int {
        const std::size_t global = indices[k];
        try {
            const core::SweepRow row =
                core::evaluate_point(engine.cache(), points[global]);
            const std::string line = worker_row_line(global, row);
            const std::lock_guard<std::mutex> lock(mu);
            rows_out << line << '\n' << std::flush;
        } catch (const std::exception& e) {
            const std::lock_guard<std::mutex> lock(mu);
            failures.push_back({global, e.what()});
        }
        return 0;
    });
    std::sort(failures.begin(), failures.end(),
              [](const Failure& a, const Failure& b) { return a.index < b.index; });
    for (const auto& f : failures)
        err << "worker: point " << f.index << " failed: " << f.what << '\n';
    return failures.size();
}

// ---- The local coordinator --------------------------------------------------

std::string self_exe_path(const char* argv0) {
    std::error_code ec;
    const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec && !exe.empty()) return exe.string();
    return argv0 ? argv0 : "floretsim_run";
}

std::vector<core::SweepRow> run_sharded(const ShardOptions& opt,
                                        const std::vector<core::SweepPoint>& points) {
    if (opt.n_shards < 1)
        throw std::invalid_argument("--shards must be >= 1, got " +
                                    std::to_string(opt.n_shards));
    if (opt.worker_exe.empty())
        throw std::invalid_argument("shard: worker_exe is empty");
    if (points.empty()) return {};
    const std::int32_t n_shards = static_cast<std::int32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(opt.n_shards),
                              points.size()));

    TempDir tmp;
    const std::string points_path = tmp.path + "/points.json";
    {
        std::ofstream f(points_path);
        f << util::json_serialize(to_json(points));
        if (!f)
            throw std::runtime_error("shard: cannot write points file " +
                                     points_path);
    }

    // Default thread budget: N local workers at full hardware concurrency
    // each would oversubscribe the host N-fold, so an unset (0) request
    // splits the cores across the shards. An explicit --threads is passed
    // through untouched — the multi-host case, where every worker owns
    // its whole machine.
    std::int32_t worker_threads = opt.threads_per_worker;
    if (worker_threads <= 0) {
        const auto hw =
            static_cast<std::int32_t>(std::thread::hardware_concurrency());
        worker_threads = std::max(1, hw / n_shards);
    }

    // Rows travel through per-shard files (--rows-out), not the popen
    // pipes: a pipe holds ~64KB, so a big shard would fill it, block its
    // writer (which holds the worker's row mutex), and serialize the
    // shards behind the coordinator's sequential drain. Files keep every
    // worker computing at full speed; popen remains for process control
    // (and would surface any unexpected stdout noise, which we discard).
    std::vector<FILE*> pipes;
    std::vector<std::string> row_paths;
    pipes.reserve(static_cast<std::size_t>(n_shards));
    std::string first_error;
    for (std::int32_t s = 0; s < n_shards; ++s) {
        row_paths.push_back(tmp.path + "/rows." + std::to_string(s) + ".ndjson");
        const std::string cmd =
            shell_quote(opt.worker_exe) + " --worker --points " +
            shell_quote(points_path) + " --shard " + std::to_string(s) + "/" +
            std::to_string(n_shards) + " --threads " +
            std::to_string(worker_threads) + " --rows-out " +
            shell_quote(row_paths.back());
        FILE* pipe = popen(cmd.c_str(), "r");
        if (!pipe) {
            if (first_error.empty())
                first_error = "shard: cannot spawn worker " + std::to_string(s) +
                              "/" + std::to_string(n_shards);
            break;
        }
        pipes.push_back(pipe);
    }

    // Wait for every launched worker (draining the quiet pipes), then
    // merge the row files by global index.
    for (std::size_t s = 0; s < pipes.size(); ++s) {
        char sink[4096];
        while (fread(sink, 1, sizeof sink, pipes[s]) > 0) {
        }
        const int status = pclose(pipes[s]);
        if (first_error.empty() && status != 0) {
            const std::string detail =
                WIFEXITED(status)
                    ? "exited with status " + std::to_string(WEXITSTATUS(status))
                    : "died on signal";
            first_error = "shard " + std::to_string(s) + "/" +
                          std::to_string(n_shards) + " " + detail +
                          " (the failing point's index is on its stderr)";
        }
    }
    if (!first_error.empty()) throw std::runtime_error(first_error);

    std::vector<core::SweepRow> rows(points.size());
    std::vector<char> seen(points.size(), 0);
    for (std::size_t s = 0; s < pipes.size(); ++s) {
        std::ifstream f(row_paths[s]);
        if (!f)
            throw std::runtime_error("shard " + std::to_string(s) + "/" +
                                     std::to_string(n_shards) +
                                     ": row file missing");
        std::string line;
        while (std::getline(f, line)) {
            std::string_view text(line);
            while (!text.empty() && text.back() == '\r') text.remove_suffix(1);
            if (text.empty()) continue;
            try {
                IndexedRow r = worker_row_from_line(text);
                if (r.index >= rows.size())
                    throw std::invalid_argument(
                        "row index " + std::to_string(r.index) +
                        " out of range for " + std::to_string(rows.size()) +
                        " points");
                if (seen[r.index])
                    throw std::invalid_argument("duplicate row for point " +
                                                std::to_string(r.index));
                rows[r.index] = std::move(r.row);
                seen[r.index] = 1;
            } catch (const std::invalid_argument& e) {
                throw std::runtime_error("shard " + std::to_string(s) + "/" +
                                         std::to_string(n_shards) + ": " +
                                         e.what());
            }
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        if (!seen[i])
            throw std::runtime_error("shard: no worker returned a row for point " +
                                     std::to_string(i));
    return rows;
}

void install_shard_executor(core::SweepEngine& engine, ShardOptions opt) {
    engine.set_point_executor(
        [opt = std::move(opt)](const std::vector<core::SweepPoint>& points) {
            return run_sharded(opt, points);
        });
}

}  // namespace floretsim::scenario
