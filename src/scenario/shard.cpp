#include "src/scenario/shard.h"

#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scenario/spec_json.h"
#include "src/util/json.h"

namespace floretsim::scenario {
namespace {

/// Self-deleting scratch directory for the coordinator's points file.
struct TempDir {
    std::string path;

    TempDir() {
        std::string templ =
            (std::filesystem::temp_directory_path() / "floretsim-shard-XXXXXX")
                .string();
        if (!mkdtemp(templ.data()))
            throw std::runtime_error("shard: mkdtemp failed for " + templ);
        path = templ;
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
};

/// POSIX-shell single-quoting for the popen command line.
std::string shell_quote(const std::string& s) {
    std::string out = "'";
    for (const char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += '\'';
    return out;
}

std::int32_t parse_int32(std::string_view text, const char* what) {
    std::int32_t v = 0;
    const auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || p != text.data() + text.size())
        throw std::invalid_argument(std::string(what) + " \"" +
                                    std::string(text) + "\" is not an integer");
    return v;
}

/// Last `n` lines of a (possibly large) text blob — the slice of a dead
/// worker's stderr worth putting in an exception message.
std::string tail_lines(std::string_view text, std::size_t n) {
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.remove_suffix(1);
    if (text.empty()) return {};
    std::size_t pos = text.size();
    for (std::size_t lines = 0; pos > 0; --pos) {
        if (text[pos - 1] == '\n' && ++lines == n) break;
    }
    return std::string(text.substr(pos));
}

std::string read_file_or_empty(const std::string& path) {
    std::ifstream f(path);
    if (!f) return {};
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

}  // namespace

void ensure_sigpipe_ignored() {
    static const bool installed = [] {
        struct sigaction sa {};
        if (sigaction(SIGPIPE, nullptr, &sa) == 0 && sa.sa_handler == SIG_DFL) {
            sa.sa_handler = SIG_IGN;
            sigemptyset(&sa.sa_mask);
            sa.sa_flags = 0;
            (void)sigaction(SIGPIPE, &sa, nullptr);
        }
        return true;
    }();
    (void)installed;
}

std::string describe_wait_status(int status) {
    if (WIFEXITED(status))
        return "exited with status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        const char* name = strsignal(sig);
        return "died on signal " + std::to_string(sig) + " (" +
               (name ? name : "unknown") + ")";
    }
    return "stopped with wait status " + std::to_string(status);
}

void absorb_worker_obs(const std::string& trace_path,
                       const std::string& metrics_path, std::int32_t worker,
                       std::ostream* warn) {
    const auto read_all = [](const std::string& path,
                             std::string& out) -> bool {
        std::ifstream f(path);
        if (!f) return false;
        std::ostringstream ss;
        ss << f.rdbuf();
        out = ss.str();
        return true;
    };
    const auto complain = [&](const char* what, const std::string& detail) {
        if (warn)
            *warn << "worker " << worker << ": cannot absorb worker " << what
                  << " (" << detail << "); sweep results are unaffected\n";
    };
    if (!trace_path.empty()) {
        std::string text;
        if (!read_all(trace_path, text)) {
            complain("trace", "file unreadable");
        } else {
            try {
                obs::Tracer::global().absorb(util::json_parse(text));
            } catch (const std::exception& e) {
                complain("trace", e.what());
            }
        }
    }
    if (!metrics_path.empty()) {
        std::string text;
        if (!read_all(metrics_path, text)) {
            complain("metrics", "file unreadable");
        } else {
            try {
                obs::MetricsRegistry::global().absorb(util::json_parse(text));
            } catch (const std::exception& e) {
                complain("metrics", e.what());
            }
        }
    }
}

// ---- Shard planning ---------------------------------------------------------

std::vector<std::size_t> shard_indices(std::size_t n_points, std::int32_t shard,
                                       std::int32_t n_shards) {
    if (n_shards < 1)
        throw std::invalid_argument("shard count must be >= 1, got " +
                                    std::to_string(n_shards));
    if (shard < 0 || shard >= n_shards)
        throw std::invalid_argument("shard index " + std::to_string(shard) +
                                    " out of range for " +
                                    std::to_string(n_shards) + " shards");
    std::vector<std::size_t> indices;
    for (std::size_t i = static_cast<std::size_t>(shard); i < n_points;
         i += static_cast<std::size_t>(n_shards))
        indices.push_back(i);
    return indices;
}

std::pair<std::int32_t, std::int32_t> parse_shard_arg(const std::string& s) {
    const std::size_t slash = s.find('/');
    if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size())
        throw std::invalid_argument("--shard expects i/N (0-based), got \"" + s +
                                    "\"");
    const std::int32_t shard =
        parse_int32(std::string_view(s).substr(0, slash), "shard index");
    const std::int32_t n_shards =
        parse_int32(std::string_view(s).substr(slash + 1), "shard count");
    (void)shard_indices(0, shard, n_shards);  // range-check i/N
    return {shard, n_shards};
}

std::int32_t clamp_worker_threads(std::int32_t requested, std::size_t n_points,
                                  std::ostream& err) {
    if (requested < 0)
        throw std::invalid_argument("--threads must be >= 0, got " +
                                    std::to_string(requested));
    if (requested == 0) return 0;  // hardware concurrency
    std::int32_t limit = kMaxWorkerThreads;
    if (n_points > 0 && n_points < static_cast<std::size_t>(limit))
        limit = static_cast<std::int32_t>(n_points);
    if (requested > limit) {
        err << "worker: clamping --threads " << requested << " to " << limit
            << " (" << (limit == kMaxWorkerThreads ? "worker thread cap"
                                                   : "one thread per point")
            << ")\n";
        return limit;
    }
    return requested;
}

// ---- The worker protocol ----------------------------------------------------

std::vector<core::SweepPoint> points_from_text(std::string_view text,
                                               const std::string& context) {
    util::Json doc;
    try {
        doc = util::json_parse(text);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(context + ": " + e.what());
    }
    std::vector<core::SweepPoint> points;
    try {
        points = sweep_points_from_json(doc);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(context + ": " + e.what());
    }
    if (points.empty())
        throw std::invalid_argument(context +
                                    ": point list is empty — a worker with no "
                                    "work is a coordinator bug");
    return points;
}

std::string worker_row_line(std::size_t index, const core::SweepRow& row) {
    util::Json j = util::Json::object();
    j.set("index", static_cast<std::uint64_t>(index));
    j.set("row", to_json(row));
    return util::json_serialize_compact(j);
}

namespace {

IndexedRow indexed_row_from_json(const util::Json& j) {
    for (const auto& [key, value] : j.as_object()) {
        (void)value;
        if (key != "index" && key != "row")
            throw std::invalid_argument("row line: unknown key \"" + key + "\"");
    }
    const util::Json* index = j.find("index");
    const util::Json* row = j.find("row");
    if (!index || !row)
        throw std::invalid_argument("row line: need both \"index\" and \"row\"");
    IndexedRow out;
    out.index = static_cast<std::size_t>(index->as_uint());
    out.row = sweep_row_from_json(*row);
    return out;
}

Heartbeat heartbeat_from_json(const util::Json& j) {
    if (j.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("hb line: \"hb\" must be an object");
    for (const auto& [key, value] : j.as_object()) {
        (void)value;
        if (key != "shard" && key != "n_shards" && key != "done" &&
            key != "total" && key != "seconds")
            throw std::invalid_argument("hb line: unknown key \"" + key + "\"");
    }
    const util::Json* shard = j.find("shard");
    const util::Json* n_shards = j.find("n_shards");
    const util::Json* done = j.find("done");
    const util::Json* total = j.find("total");
    const util::Json* seconds = j.find("seconds");
    if (!shard || !n_shards || !done || !total || !seconds)
        throw std::invalid_argument(
            "hb line: need shard, n_shards, done, total, and seconds");
    Heartbeat hb;
    hb.shard = static_cast<std::int32_t>(shard->as_int());
    hb.n_shards = static_cast<std::int32_t>(n_shards->as_int());
    if (hb.n_shards < 1 || hb.shard < 0 || hb.shard >= hb.n_shards)
        throw std::invalid_argument("hb line: shard " + std::to_string(hb.shard) +
                                    "/" + std::to_string(hb.n_shards) +
                                    " out of range");
    hb.done = done->as_uint();
    hb.total = total->as_uint();
    if (hb.done > hb.total)
        throw std::invalid_argument("hb line: done " + std::to_string(hb.done) +
                                    " exceeds total " + std::to_string(hb.total));
    hb.seconds = seconds->as_double();
    if (!std::isfinite(hb.seconds) || hb.seconds < 0.0)
        throw std::invalid_argument("hb line: seconds must be finite and >= 0");
    return hb;
}

}  // namespace

IndexedRow worker_row_from_line(std::string_view line) {
    util::Json j;
    try {
        j = util::json_parse(line);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("row line: ") + e.what());
    }
    if (j.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("row line: expected an object, got " +
                                    std::string(j.kind_name()));
    return indexed_row_from_json(j);
}

std::string heartbeat_line(const Heartbeat& hb) {
    util::Json inner = util::Json::object();
    inner.set("shard", hb.shard);
    inner.set("n_shards", hb.n_shards);
    inner.set("done", hb.done);
    inner.set("total", hb.total);
    inner.set("seconds", hb.seconds);
    util::Json j = util::Json::object();
    j.set("hb", std::move(inner));
    return util::json_serialize_compact(j);
}

StreamLine stream_line_from(std::string_view line) {
    util::Json j;
    try {
        j = util::json_parse(line);
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(std::string("stream line: ") + e.what());
    }
    if (j.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument("stream line: expected an object, got " +
                                    std::string(j.kind_name()));
    StreamLine out;
    if (const util::Json* hb = j.find("hb")) {
        if (j.as_object().size() != 1)
            throw std::invalid_argument(
                "hb line: \"hb\" must be the only top-level key");
        out.hb = heartbeat_from_json(*hb);
        return out;
    }
    out.row = indexed_row_from_json(j);
    return out;
}

std::size_t run_worker_points(core::SweepEngine& engine,
                              const std::vector<core::SweepPoint>& points,
                              const std::vector<std::size_t>& indices,
                              std::ostream& rows_out, std::ostream& err,
                              const HeartbeatSink& hb) {
    for (const std::size_t i : indices)
        if (i >= points.size())
            throw std::invalid_argument("worker: shard index " +
                                        std::to_string(i) + " out of range for " +
                                        std::to_string(points.size()) + " points");
    struct Failure {
        std::size_t index;
        std::string what;
    };
    std::mutex mu;
    std::vector<Failure> failures;
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t done = 0;
    // Caller holds mu (or is still single-threaded, before engine.map).
    const auto emit_hb = [&](std::uint64_t done_now) {
        if (!hb.out) return;
        Heartbeat h;
        h.shard = hb.shard;
        h.n_shards = hb.n_shards;
        h.done = done_now;
        h.total = indices.size();
        h.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        *hb.out << heartbeat_line(h) << '\n' << std::flush;
    };
    emit_hb(0);
    (void)engine.map(indices.size(), [&](std::size_t k) -> int {
        const std::size_t global = indices[k];
        try {
            const core::SweepRow row =
                core::evaluate_point(engine.cache(), points[global]);
            const std::string line = worker_row_line(global, row);
            const std::lock_guard<std::mutex> lock(mu);
            rows_out << line << '\n' << std::flush;
            emit_hb(++done);
        } catch (const std::exception& e) {
            const std::lock_guard<std::mutex> lock(mu);
            failures.push_back({global, e.what()});
            emit_hb(++done);
        }
        return 0;
    });
    std::sort(failures.begin(), failures.end(),
              [](const Failure& a, const Failure& b) { return a.index < b.index; });
    for (const auto& f : failures)
        err << "worker: point " << f.index << " failed: " << f.what << '\n';
    return failures.size();
}

// ---- The local coordinator --------------------------------------------------

std::string self_exe_path(const char* argv0) {
    std::error_code ec;
    const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
    if (!ec && !exe.empty()) return exe.string();
    return argv0 ? argv0 : "floretsim_run";
}

// ---- The streaming row merge ------------------------------------------------

MergedRowFileStream::MergedRowFileStream(std::vector<std::string> row_paths,
                                         std::size_t n_points,
                                         std::function<void()> cleanup)
    : row_paths_(std::move(row_paths)), cleanup_(std::move(cleanup)) {
    locs_.assign(n_points, Loc{});
    std::vector<char> seen(n_points, 0);
    // One indexing pass per file: record where every point's row starts,
    // so next() can seek straight to it. Rows land in completion order
    // inside each file — the offsets are what turn that back into point
    // order without holding any parsed row.
    for (std::size_t s = 0; s < row_paths_.size(); ++s) {
        auto f = std::make_unique<std::ifstream>(row_paths_[s]);
        if (!*f)
            throw std::runtime_error("shard " + std::to_string(s) + "/" +
                                     std::to_string(row_paths_.size()) +
                                     ": row file missing");
        std::string line;
        std::uint64_t offset = 0;
        while (std::getline(*f, line)) {
            const std::uint64_t line_start = offset;
            offset += line.size() + 1;  // +1: the '\n' getline consumed
            std::string_view text(line);
            while (!text.empty() && text.back() == '\r') text.remove_suffix(1);
            if (text.empty()) continue;
            try {
                // Index-only parse: pull out the point index, defer the
                // (allocation-heavy) row conversion to next(). Heartbeat
                // envelopes share the stream protocol and are skipped.
                const util::Json j = util::json_parse(text);
                if (j.kind() != util::Json::Kind::kObject)
                    throw std::invalid_argument(
                        "row line: expected an object, got " +
                        std::string(j.kind_name()));
                if (j.find("hb")) {
                    (void)stream_line_from(text);  // strict heartbeat check
                    continue;
                }
                for (const auto& [key, value] : j.as_object()) {
                    (void)value;
                    if (key != "index" && key != "row")
                        throw std::invalid_argument("row line: unknown key \"" +
                                                    key + "\"");
                }
                const util::Json* index = j.find("index");
                if (!index || !j.find("row"))
                    throw std::invalid_argument(
                        "row line: need both \"index\" and \"row\"");
                const std::size_t i = static_cast<std::size_t>(index->as_uint());
                if (i >= n_points)
                    throw std::invalid_argument(
                        "row index " + std::to_string(i) + " out of range for " +
                        std::to_string(n_points) + " points");
                if (seen[i])
                    throw std::invalid_argument("duplicate row for point " +
                                                std::to_string(i));
                seen[i] = 1;
                locs_[i] = Loc{static_cast<std::uint32_t>(s), line_start};
            } catch (const std::invalid_argument& e) {
                throw std::runtime_error("shard " + std::to_string(s) + "/" +
                                         std::to_string(row_paths_.size()) +
                                         ": " + e.what());
            }
        }
        f->clear();  // getline hit EOF; next() seeks on this same stream
        files_.push_back(std::move(f));
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        if (!seen[i])
            throw std::runtime_error(
                "shard: no worker returned a row for point " + std::to_string(i));
    // On any throw above, the already-constructed cleanup_ member is
    // destroyed during unwinding — the scratch directory never outlives a
    // failed merge.
}

MergedRowFileStream::~MergedRowFileStream() {
    files_.clear();  // close the readers before releasing their directory
    cleanup_ = nullptr;
}

std::optional<core::SweepRow> MergedRowFileStream::next() {
    if (pos_ >= locs_.size()) return std::nullopt;
    const Loc loc = locs_[pos_];
    std::istream& f = *files_[loc.file];
    f.clear();
    f.seekg(static_cast<std::streamoff>(loc.offset));
    std::string line;
    if (!std::getline(f, line)) {
        throw std::runtime_error(
            "shard " + std::to_string(loc.file) + "/" +
            std::to_string(row_paths_.size()) + ": row file shrank under point " +
            std::to_string(pos_));
    }
    try {
        // Exactly one parsed row resident at a time — the streaming-merge
        // memory contract (see peak_resident_rows).
        peak_resident_ = std::max<std::size_t>(peak_resident_, 1);
        IndexedRow r = worker_row_from_line(line);
        if (r.index != pos_)
            throw std::invalid_argument("row index changed from " +
                                        std::to_string(pos_) + " to " +
                                        std::to_string(r.index) +
                                        " between indexing and read");
        ++pos_;
        obs::MetricsRegistry::global().add("shard.rows_merged");
        return std::move(r.row);
    } catch (const std::invalid_argument& e) {
        throw std::runtime_error("shard " + std::to_string(loc.file) + "/" +
                                 std::to_string(row_paths_.size()) + ": " +
                                 e.what());
    }
}

std::unique_ptr<core::RowStream> run_sharded_stream(
    const ShardOptions& opt, const std::vector<core::SweepPoint>& points) {
    const obs::Span sharded_span("run_sharded", "shard");
    // A worker dying mid-write must not take the coordinator down with a
    // SIGPIPE; the write error surfaces through the wait status instead.
    ensure_sigpipe_ignored();
    if (opt.n_shards < 1)
        throw std::invalid_argument("--shards must be >= 1, got " +
                                    std::to_string(opt.n_shards));
    if (opt.worker_exe.empty())
        throw std::invalid_argument("shard: worker_exe is empty");
    if (points.empty())
        return std::make_unique<core::VectorRowStream>(
            std::vector<core::SweepRow>{});
    const std::int32_t n_shards = static_cast<std::int32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(opt.n_shards),
                              points.size()));

    // The scratch directory must outlive this function — the returned
    // stream reads row files from it lazily — so it is shared between the
    // failure paths here (where the last reference dies with the throw,
    // removing it: a dead worker leaves no temp files behind) and the
    // stream's cleanup hook.
    auto tmp = std::make_shared<TempDir>();
    const std::string points_path = tmp->path + "/points.json";
    {
        std::ofstream f(points_path);
        f << util::json_serialize(to_json(points));
        if (!f)
            throw std::runtime_error("shard: cannot write points file " +
                                     points_path);
    }

    // Default thread budget: N local workers at full hardware concurrency
    // each would oversubscribe the host N-fold, so an unset (0) request
    // splits the cores across the shards. An explicit --threads is passed
    // through untouched — the multi-host case, where every worker owns
    // its whole machine.
    std::int32_t worker_threads = opt.threads_per_worker;
    if (worker_threads <= 0) {
        const auto hw =
            static_cast<std::int32_t>(std::thread::hardware_concurrency());
        worker_threads = std::max(1, hw / n_shards);
    }

    // Rows travel through per-shard files (--rows-out), not the popen
    // pipes: a pipe holds ~64KB, so a big shard would fill it, block its
    // writer (which holds the worker's row mutex), and serialize the
    // shards behind the coordinator's sequential drain. Files keep every
    // worker computing at full speed; the popen pipes carry only the
    // small heartbeat stream, which the coordinator polls live.
    const bool trace_on = obs::Tracer::global().enabled();
    const bool metrics_on = obs::MetricsRegistry::global().enabled();
    obs::MetricsRegistry::global().add("shard.sweeps");

    struct Worker {
        FILE* pipe = nullptr;
        int fd = -1;
        bool eof = false;
        std::string buf;
        bool saw_hb = false;
        Heartbeat last;
        std::chrono::steady_clock::time_point last_print;
        bool printed = false;
    };
    std::vector<Worker> workers;
    std::vector<std::string> row_paths;
    std::vector<std::string> stderr_paths;
    std::vector<std::string> trace_paths(static_cast<std::size_t>(n_shards));
    std::vector<std::string> metrics_paths(static_cast<std::size_t>(n_shards));
    workers.reserve(static_cast<std::size_t>(n_shards));
    std::string first_error;
    for (std::int32_t s = 0; s < n_shards; ++s) {
        row_paths.push_back(tmp->path + "/rows." + std::to_string(s) + ".ndjson");
        stderr_paths.push_back(tmp->path + "/stderr." + std::to_string(s) +
                               ".log");
        std::string cmd =
            shell_quote(opt.worker_exe) + " --worker --points " +
            shell_quote(points_path) + " --shard " + std::to_string(s) + "/" +
            std::to_string(n_shards) + " --threads " +
            std::to_string(worker_threads) + " --rows-out " +
            shell_quote(row_paths.back());
        if (trace_on) {
            trace_paths[static_cast<std::size_t>(s)] =
                tmp->path + "/trace." + std::to_string(s) + ".json";
            cmd += " --trace-out " +
                   shell_quote(trace_paths[static_cast<std::size_t>(s)]);
        }
        if (metrics_on) {
            metrics_paths[static_cast<std::size_t>(s)] =
                tmp->path + "/metrics." + std::to_string(s) + ".json";
            cmd += " --metrics-out " +
                   shell_quote(metrics_paths[static_cast<std::size_t>(s)]);
        }
        // Capture stderr to a file so a dead worker's last words make it
        // into the coordinator's exception instead of scrolling away.
        cmd += " 2> " + shell_quote(stderr_paths.back());
        FILE* pipe = popen(cmd.c_str(), "r");
        if (!pipe) {
            if (first_error.empty())
                first_error = "shard: cannot spawn worker " + std::to_string(s) +
                              "/" + std::to_string(n_shards);
            break;
        }
        Worker w;
        w.pipe = pipe;
        w.fd = fileno(pipe);
        w.last_print = std::chrono::steady_clock::now();
        workers.push_back(w);
        obs::MetricsRegistry::global().add("shard.workers_spawned");
    }

    // Live heartbeat loop: poll every worker pipe, parse the NDJSON
    // heartbeat envelopes, and surface per-shard progress. Non-heartbeat
    // stdout noise is tolerated silently — the row/merge path below is
    // the strict one, and a chatty worker must not kill a healthy sweep.
    const auto print_progress = [&](Worker& w, std::size_t s, bool final_hb) {
        if (!opt.progress || !w.saw_hb) return;
        const auto now = std::chrono::steady_clock::now();
        const double since_print =
            std::chrono::duration<double>(now - w.last_print).count();
        if (w.printed && !final_hb && w.last.done != w.last.total &&
            since_print < opt.progress_interval_s)
            return;
        const double pct =
            w.last.total == 0
                ? 100.0
                : 100.0 * static_cast<double>(w.last.done) /
                      static_cast<double>(w.last.total);
        char pct_buf[16];
        std::snprintf(pct_buf, sizeof pct_buf, "%.0f", pct);
        char sec_buf[32];
        std::snprintf(sec_buf, sizeof sec_buf, "%.1f", w.last.seconds);
        *opt.progress << "[shard " << s << "/" << n_shards << "] " << w.last.done
                      << "/" << w.last.total << " points (" << pct_buf << "%) "
                      << sec_buf << "s\n"
                      << std::flush;
        w.printed = true;
        w.last_print = now;
    };
    const auto handle_line = [&](Worker& w, std::size_t s,
                                 std::string_view text) {
        while (!text.empty() && text.back() == '\r') text.remove_suffix(1);
        if (text.empty()) return;
        StreamLine line;
        try {
            line = stream_line_from(text);
        } catch (const std::invalid_argument&) {
            return;  // stdout noise; the row files carry the real data
        }
        if (!line.hb) return;
        w.last = *line.hb;
        const bool first = !w.saw_hb;
        w.saw_hb = true;
        obs::MetricsRegistry::global().add("shard.heartbeats");
        print_progress(w, s, first || w.last.done == w.last.total);
    };
    std::size_t open_fds = workers.size();
    while (open_fds > 0) {
        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_worker;
        for (std::size_t s = 0; s < workers.size(); ++s) {
            if (workers[s].eof) continue;
            fds.push_back(pollfd{workers[s].fd, POLLIN, 0});
            fd_worker.push_back(s);
        }
        const int rc = poll(fds.data(), fds.size(), 200);
        if (rc < 0) {
            if (errno == EINTR) continue;
            break;  // fall through to pclose, which still reaps the workers
        }
        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
            Worker& w = workers[fd_worker[k]];
            char chunk[4096];
            const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
            if (n > 0) {
                w.buf.append(chunk, static_cast<std::size_t>(n));
                std::size_t nl;
                while ((nl = w.buf.find('\n')) != std::string::npos) {
                    handle_line(w, fd_worker[k],
                                std::string_view(w.buf).substr(0, nl));
                    w.buf.erase(0, nl + 1);
                }
            } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
                if (!w.buf.empty()) handle_line(w, fd_worker[k], w.buf);
                w.buf.clear();
                w.eof = true;
                --open_fds;
            }
        }
    }

    for (std::size_t s = 0; s < workers.size(); ++s) {
        const int status = pclose(workers[s].pipe);
        const std::string worker_stderr = read_file_or_empty(stderr_paths[s]);
        if (first_error.empty() && status != 0) {
            first_error = "shard " + std::to_string(s) + "/" +
                          std::to_string(n_shards) + " " +
                          describe_wait_status(status);
            const std::string tail = tail_lines(worker_stderr, 20);
            first_error += tail.empty() ? "; its stderr was empty"
                                        : "; last stderr lines:\n" + tail;
        } else if (status == 0 && !worker_stderr.empty()) {
            // A healthy worker's warnings still belong on the coordinator's
            // diagnostic stream, exactly as if stderr had been inherited.
            (opt.progress ? *opt.progress : std::cerr) << worker_stderr;
        }
    }
    if (!first_error.empty()) throw std::runtime_error(first_error);

    // Straggler/imbalance summary from the final heartbeats, then fold
    // each worker's trace/metrics file into the process-global sinks.
    if (opt.progress) {
        double wall_min = 0.0, wall_max = 0.0, wall_sum = 0.0;
        std::size_t slowest = 0, reporting = 0;
        for (std::size_t s = 0; s < workers.size(); ++s) {
            if (!workers[s].saw_hb) continue;
            const double sec = workers[s].last.seconds;
            if (reporting == 0 || sec < wall_min) wall_min = sec;
            if (reporting == 0 || sec > wall_max) {
                wall_max = sec;
                slowest = s;
            }
            wall_sum += sec;
            ++reporting;
        }
        if (reporting > 0) {
            const double mean = wall_sum / static_cast<double>(reporting);
            const double imbalance = mean > 0.0 ? wall_max / mean : 1.0;
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "[shards] %zu workers: wall %.1fs..%.1fs (mean %.1fs), "
                          "imbalance max/mean %.2f, slowest shard %zu\n",
                          reporting, wall_min, wall_max, mean, imbalance,
                          slowest);
            *opt.progress << buf << std::flush;
        }
    }
    for (std::size_t s = 0; s < workers.size(); ++s)
        absorb_worker_obs(trace_paths[s], metrics_paths[s],
                          static_cast<std::int32_t>(s), opt.progress);

    // Lazy merge from here on: the stream owns the scratch directory (via
    // the cleanup hook) and hands rows out one at a time in point order.
    return std::make_unique<MergedRowFileStream>(std::move(row_paths),
                                                 points.size(), [tmp] {});
}

std::vector<core::SweepRow> run_sharded(const ShardOptions& opt,
                                        const std::vector<core::SweepPoint>& points) {
    auto stream = run_sharded_stream(opt, points);
    std::vector<core::SweepRow> rows;
    rows.reserve(stream->size());
    while (auto row = stream->next()) rows.push_back(std::move(*row));
    return rows;
}

void install_shard_executor(core::SweepEngine& engine, ShardOptions opt) {
    engine.set_executor_label("shards");
    engine.set_stream_executor(
        [opt = std::move(opt)](const std::vector<core::SweepPoint>& points) {
            return run_sharded_stream(opt, points);
        });
}

}  // namespace floretsim::scenario
