#include "src/scenario/report.h"

#include <cstdio>
#include <fstream>

#include "src/noc/simulator.h"
#include "src/obs/build_info.h"
#include "src/util/stats.h"

namespace floretsim::scenario {

void JsonReport::add_table(const std::string& key, const util::TextTable& table) {
    tables_.push_back(Table{key, table.header(), table.data()});
}

void JsonReport::add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
}

void JsonReport::set_run_info(const std::string& key, util::Json value) {
    for (auto& [k, v] : run_info_)
        if (k == key) {
            v = std::move(value);
            return;
        }
    run_info_.emplace_back(key, std::move(value));
}

util::Json JsonReport::to_value() const {
    util::Json doc = util::Json::object();
    doc.set("bench", name_);
    // The active simulator core: SimConfig's default after the
    // FLORETSIM_SIM_CORE override (also how the --core CLI flags apply), so
    // every report records which engine earned its numbers. Scenarios that
    // override sim.core per spec additionally say so in their own metrics.
    doc.set("sim_core",
            std::string(noc::sim_core_name(
                noc::resolved_sim_core(noc::SimConfig{}.core))));
    // Provenance: enough to reproduce (or distrust) the numbers — what
    // binary, which source revision, which simulator core — plus any
    // run-specific facts layered on via set_run_info.
    util::Json run_info = obs::build_info_json();
    run_info.set("sim_core",
                 std::string(noc::sim_core_name(
                     noc::resolved_sim_core(noc::SimConfig{}.core))));
    for (const auto& [key, value] : run_info_) run_info.set(key, value);
    doc.set("run_info", std::move(run_info));
    util::Json metrics = util::Json::object();
    // Non-finite doubles serialize as null (see util::json_serialize).
    for (const auto& [key, value] : metrics_) metrics.set(key, value);
    doc.set("metrics", std::move(metrics));
    util::Json tables = util::Json::object();
    for (const auto& tab : tables_) {
        util::Json t = util::Json::object();
        util::Json columns = util::Json::array();
        for (const auto& c : tab.header) columns.push_back(c);
        t.set("columns", std::move(columns));
        util::Json rows = util::Json::array();
        for (const auto& row : tab.rows) {
            util::Json cells = util::Json::array();
            for (const auto& cell : row) cells.push_back(cell);
            rows.push_back(std::move(cells));
        }
        t.set("rows", std::move(rows));
        tables.set(tab.key, std::move(t));
    }
    doc.set("tables", std::move(tables));
    return doc;
}

std::string JsonReport::to_json() const { return util::json_serialize(to_value()); }

bool JsonReport::write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                     path.c_str());
        return false;
    }
    f << to_json();
    return static_cast<bool>(f);
}

void add_point_timing(JsonReport& report, const core::SweepResult& sweep) {
    std::vector<double> seconds;
    seconds.reserve(sweep.rows.size());
    for (const auto& row : sweep.rows) seconds.push_back(row.seconds);
    add_point_timing(report, seconds);
}

void add_point_timing(JsonReport& report, std::span<const double> point_seconds) {
    util::RunningStats t;
    for (const double s : point_seconds) t.add(s);
    if (t.empty()) return;
    report.add_metric("point_seconds_min", t.min());
    report.add_metric("point_seconds_mean", t.mean());
    report.add_metric("point_seconds_max", t.max());
    report.add_metric("point_imbalance",
                      t.mean() > 0.0 ? t.max() / t.mean() : 1.0);
}

}  // namespace floretsim::scenario
