#pragma once

#include <string>
#include <vector>

#include "src/core/evaluator.h"
#include "src/core/hetero.h"
#include "src/core/sweep.h"
#include "src/cost/models.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/serve/cluster.h"
#include "src/serve/sweep.h"
#include "src/util/json.h"
#include "src/workload/tables.h"

namespace floretsim::scenario {

/// JSON (de)serialization for every spec type a scenario can carry. The
/// contract, pinned by tests/test_scenario_json.cpp:
///
///   * strict round-trip: from_json(to_json(x)) == x for every spec type
///     (to_json always emits every field; doubles at max_digits10);
///   * partial specs are welcome: a missing key keeps the default, so
///     user files only state what they change (serving configs default to
///     serve::default_serve_config(), keeping user specs on the same
///     measurement scale as the documented serving numbers);
///   * unknown keys are rejected with the offending context in the
///     message — a typoed knob must never silently run the default sweep;
///   * workload mixes serialize as Table II names ("WL1") whenever they
///     match the canonical entry, and custom mixes reference Table I
///     workloads by id — specs carry names, not inlined layer tables.
///
/// All from_json functions throw std::invalid_argument on malformed input.

/// ASCII lowercase — the normalization used for enum spellings and
/// metric-key fragments throughout the scenario layer.
[[nodiscard]] std::string ascii_lower(std::string s);

// ---- Enums ------------------------------------------------------------------

[[nodiscard]] util::Json to_json(core::experiment::Arch a);
[[nodiscard]] core::experiment::Arch arch_from_json(const util::Json& j);
/// Accepts the CLI/JSON spellings: "kite", "siam" / "siam-mesh", "swap",
/// "floret" (case-insensitive, arch_name() spellings included).
[[nodiscard]] core::experiment::Arch arch_from_string(const std::string& s);

[[nodiscard]] util::Json to_json(noc::SimCore c);
[[nodiscard]] noc::SimCore sim_core_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(serve::AdmissionPolicy p);
[[nodiscard]] serve::AdmissionPolicy admission_policy_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(serve::BalancePolicy p);
[[nodiscard]] serve::BalancePolicy balance_policy_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(serve::ArrivalProcess p);
[[nodiscard]] serve::ArrivalProcess arrival_process_from_json(const util::Json& j);

// ---- Simulator / evaluation knobs ------------------------------------------

[[nodiscard]] util::Json to_json(const noc::SimConfig& c);
[[nodiscard]] noc::SimConfig sim_config_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(const cost::CostParams& c);
[[nodiscard]] cost::CostParams cost_params_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(const core::EvalConfig& c);
[[nodiscard]] core::EvalConfig eval_config_from_json(const util::Json& j);

// ---- Workload mixes ---------------------------------------------------------

/// A mix that matches its Table II namesake exactly serializes as the bare
/// name string; anything else as {"name", "entries": [["DNN1", 3], ...],
/// "paper_total_params_b"} with every id validated against Table I.
[[nodiscard]] util::Json to_json(const workload::ConcurrentMix& m);
[[nodiscard]] workload::ConcurrentMix mix_from_json(const util::Json& j);

// ---- Sweep specs ------------------------------------------------------------

/// Strict "WxH" parser shared by the JSON spec forms and the CLI
/// --set grid override, so both entry points validate identically.
/// Throws std::invalid_argument on malformed or out-of-int32-range input.
[[nodiscard]] std::pair<std::int32_t, std::int32_t> grid_from_string(
    const std::string& s);

/// Grids serialize as "WxH" strings; parsing also accepts [w, h] pairs.
[[nodiscard]] util::Json to_json(const core::SweepSpec& s);
[[nodiscard]] core::SweepSpec sweep_spec_from_json(const util::Json& j);

/// SweepPoint is the unit of cross-process distribution: a serialized
/// point list is a self-contained work order for a remote runner.
[[nodiscard]] util::Json to_json(const core::SweepPoint& p);
[[nodiscard]] core::SweepPoint sweep_point_from_json(const util::Json& j);
[[nodiscard]] util::Json to_json(const std::vector<core::SweepPoint>& pts);
[[nodiscard]] std::vector<core::SweepPoint> sweep_points_from_json(
    const util::Json& j);

// ---- Sweep rows (the return wire format) ------------------------------------

/// SweepRow is the unit of distributed *results*: a worker that consumed
/// a SweepPoint list streams SweepRows back, and the coordinator merges
/// them into expansion order — the mirror image of the point-list request
/// format above. Strict round-trip (sweep_rows_from_json(to_json(r)) ==
/// r) and unknown-key rejection, like every other spec type.
[[nodiscard]] util::Json to_json(const core::experiment::DynamicResult& r);
[[nodiscard]] core::experiment::DynamicResult dynamic_result_from_json(
    const util::Json& j);

[[nodiscard]] util::Json to_json(const core::SweepRow& r);
[[nodiscard]] core::SweepRow sweep_row_from_json(const util::Json& j);
[[nodiscard]] util::Json to_json(const std::vector<core::SweepRow>& rows);
[[nodiscard]] std::vector<core::SweepRow> sweep_rows_from_json(const util::Json& j);

// ---- Serving specs ----------------------------------------------------------

[[nodiscard]] util::Json to_json(const serve::RequestClass& c);
[[nodiscard]] serve::RequestClass request_class_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(const serve::ArrivalConfig& c);
[[nodiscard]] serve::ArrivalConfig arrival_config_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(const serve::ServeConfig& c);
[[nodiscard]] serve::ServeConfig serve_config_from_json(const util::Json& j);

[[nodiscard]] util::Json to_json(const serve::ServeSpec& s);
[[nodiscard]] serve::ServeSpec serve_spec_from_json(const util::Json& j);

/// The serving scenarios' grid: one base ServeSpec fanned out over a list
/// of architectures and offered loads (arch x load x replication), the
/// shape bench_serving_sla sweeps. The base spec's own `arch` field is
/// ignored when `archs` is non-empty.
struct ServeGridSpec {
    /// A base ServeSpec carrying the serving defaults
    /// (serve::default_serve_config()'s eval scale, not a bare
    /// EvalConfig{}), so grid specs measure on the documented scale.
    serve::ServeSpec base = default_base();
    std::vector<core::experiment::Arch> archs{
        core::experiment::kAllArchs.begin(), core::experiment::kAllArchs.end()};
    std::vector<double> loads_per_mcycle{100.0, 250.0, 500.0, 1000.0, 2000.0};

    [[nodiscard]] static serve::ServeSpec default_base();
    [[nodiscard]] bool operator==(const ServeGridSpec&) const = default;
};

[[nodiscard]] util::Json to_json(const ServeGridSpec& s);
[[nodiscard]] ServeGridSpec serve_grid_spec_from_json(const util::Json& j);

/// The capacity-planning grid the `cluster` scenario sweeps: one base
/// ServeSpec fanned out over cluster sizes (fabric count K behind the
/// load-balancing frontend), batch caps, and offered loads —
/// K x batch x load x replication cells, each a serve::serve_cluster run.
/// Every fabric in a cell is a replica of the base spec's arch/grid.
struct ClusterSpec {
    serve::ServeSpec base = ServeGridSpec::default_base();
    std::vector<std::int32_t> cluster_sizes{1, 2};
    std::vector<std::int32_t> batch_caps{1, 4};
    std::vector<double> loads_per_mcycle{500.0, 2000.0, 8000.0};
    serve::BalancePolicy balance = serve::BalancePolicy::kModelAffinity;

    [[nodiscard]] bool operator==(const ClusterSpec&) const = default;
};

[[nodiscard]] util::Json to_json(const ClusterSpec& s);
[[nodiscard]] ClusterSpec cluster_spec_from_json(const util::Json& j);

// ---- 3D MOO specs (Figs. 6-7, M3D-vs-TSV) -----------------------------------

/// Routing spellings: "shortest_path" / "updown" / "xy" (case-insensitive).
[[nodiscard]] util::Json to_json(noc::RoutingPolicy p);
[[nodiscard]] noc::RoutingPolicy routing_policy_from_json(const util::Json& j);

/// One 3D-integration variant of the PE stack: the M3D-vs-TSV study runs
/// the same joint optimization across variants that differ only in
/// vertical wire length and inter-tier thermal conductance. The defaults
/// are make_mesh3d's tier pitch and ThermalConfig's vertical conductance,
/// so a spec with no variants runs the paper's baseline stack.
struct Moo3dVariant {
    std::string name = "default";
    double tier_pitch_mm = 0.05;
    double g_vertical_w_per_k = 0.5;

    [[nodiscard]] bool operator==(const Moo3dVariant&) const = default;
};

/// The 3D placement-optimization scenarios (Figs. 6-7 and the M3D study):
/// for each Table I workload and each integration variant, anneal the
/// layer-to-PE placement on a width x height x depth stack and compare
/// the performance-only (Floret SFC) mapping against the joint
/// performance-thermal optimum. The MooConfig knobs are inlined; defaults
/// are the Fig. 6 settings (the joint design targets the ReRAM-safe
/// temperature, so w_thermal is strong and t_target_k is 331 K).
struct Moo3dSpec {
    std::vector<std::string> workloads;  ///< Table I ids ("DNN1"...).
    std::int32_t width = 5;
    std::int32_t height = 5;
    std::int32_t depth = 4;
    noc::RoutingPolicy routing = noc::RoutingPolicy::kShortestPath;
    std::int32_t iterations = 1500;
    double w_perf = 1.0;
    double w_thermal = 0.2;
    double t_target_k = 331.0;
    std::uint64_t seed = 7;  ///< The annealer's move seed (MooConfig::seed).
    /// Empty runs one default Moo3dVariant (the baseline stack).
    std::vector<Moo3dVariant> variants;

    [[nodiscard]] bool operator==(const Moo3dSpec&) const = default;
};

[[nodiscard]] util::Json to_json(const Moo3dSpec& s);
[[nodiscard]] Moo3dSpec moo3d_spec_from_json(const util::Json& j);

// ---- Transformer specs (Section IV) -----------------------------------------

/// Model spellings accepted in TransformerSpec::models.
[[nodiscard]] dnn::TransformerConfig transformer_model_from_name(
    const std::string& name);

[[nodiscard]] util::Json to_json(const core::HeteroConfig& c);
[[nodiscard]] core::HeteroConfig hetero_config_from_json(const util::Json& j);

/// The Section IV studies: encoder stacks ("bert_tiny" / "bert_base") at
/// the given batch sizes, on the heterogeneous ReRAM-macro + SRAM
/// attention-module system described by `hetero`. The storage analysis
/// uses models x batches only; the hetero-vs-all-PIM comparison maps each
/// model (at batches.front()) onto the system both ways.
struct TransformerSpec {
    std::vector<std::string> models{"bert_tiny", "bert_base"};
    std::vector<std::int32_t> batches{1};
    core::HeteroConfig hetero;

    [[nodiscard]] bool operator==(const TransformerSpec&) const = default;
};

[[nodiscard]] util::Json to_json(const TransformerSpec& s);
[[nodiscard]] TransformerSpec transformer_spec_from_json(const util::Json& j);

// ---- Scaling specs (the ablation study) -------------------------------------

/// The scaling ablation: Floret vs mesh across side x side systems each
/// running a random mix sized to the system (3 + side workloads, drawn
/// from Rng(mix_seed) — a fresh generator per side, so every side's mix
/// is independent of list order), plus the petal-count (lambda) sweep at
/// 100 chiplets and the weight-loading ablation. Unlike SweepSpec the
/// point list is derived, not enumerated: scaling_points() in the
/// registry layer is the single expansion both the report and the result
/// cache use.
struct ScalingSpec {
    std::vector<std::int32_t> sides{6, 8, 10, 12};
    std::vector<core::experiment::Arch> archs{
        core::experiment::Arch::kSiamMesh, core::experiment::Arch::kFloret};
    std::vector<std::int32_t> lambdas{2, 4, 5, 10, 20};
    core::EvalConfig eval = core::experiment::default_eval_config();
    std::uint64_t mix_seed = 7;
    std::uint64_t swap_seed = 13;
    std::int32_t greedy_max_gap = 2;
    std::uint64_t run_seed = 1;

    [[nodiscard]] bool operator==(const ScalingSpec&) const = default;
};

[[nodiscard]] util::Json to_json(const ScalingSpec& s);
[[nodiscard]] ScalingSpec scaling_spec_from_json(const util::Json& j);

}  // namespace floretsim::scenario
