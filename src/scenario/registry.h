#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/core/sweep.h"
#include "src/scenario/report.h"
#include "src/scenario/spec_json.h"

namespace floretsim::scenario {

/// First-class scenario layer: every paper figure/table registers a named
/// Scenario — a serializable spec plus a report function — and both the
/// thin bench binaries and the floretsim_run driver execute scenarios by
/// name through the same code path, so a driver run is bit-identical to
/// the standalone binary (pinned by the scenario_parity ctest). The spec
/// is data (JSON in, JSON out, CLI overrides applied in place); the
/// report function is the only code, and it receives a shared SweepEngine
/// so consecutive scenarios reuse one fabric cache (fig3+fig5 build their
/// identical sweeps once).

/// What a scenario runs: a batch sweep grid, a serving grid, a serving
/// cluster capacity grid, a 3D placement-optimization study, a
/// Transformer study, or the scaling ablation. Every alternative is pure
/// serializable data.
using SpecVariant = std::variant<core::SweepSpec, ServeGridSpec, ClusterSpec,
                                 Moo3dSpec, TransformerSpec, ScalingSpec>;

/// "sweep" / "serve_grid" / "cluster" / "moo3d" / "transformer" /
/// "scaling" — the `kind` discriminator in scenario files.
[[nodiscard]] const char* spec_kind_name(const SpecVariant& spec);

[[nodiscard]] util::Json to_json(const SpecVariant& spec);
/// Parses a spec of the named kind (see spec_kind_name).
[[nodiscard]] SpecVariant spec_from_json(const util::Json& j,
                                         const std::string& kind);

/// The spec's content hash: FNV-1a over the cache format version, the
/// kind name, and the canonical compact JSON serialization — the identity
/// --list prints and the result cache builds on. Invariant under JSON key
/// order/whitespace of any user representation (hashing happens after
/// parse -> canonical re-serialization); changes whenever any semantic
/// field changes.
[[nodiscard]] std::uint64_t spec_hash(const SpecVariant& spec);

/// The deterministic point list of the scaling ablation: for each side, a
/// random mix of 3 + side workloads drawn from a fresh Rng(mix_seed),
/// fanned over the archs. The single expansion shared by the report
/// function, the result cache, and --list.
[[nodiscard]] std::vector<core::SweepPoint> scaling_points(const ScalingSpec& s);

/// The evaluate_point work-list of a spec, when its kind has one: sweep
/// specs expand their grid, scaling specs derive scaling_points(). The
/// other kinds (serving replications, annealing studies, analytical
/// Transformer models) do bespoke work the point cache cannot address —
/// nullopt, and --list reports them as such.
[[nodiscard]] std::optional<std::vector<core::SweepPoint>> cacheable_points(
    const SpecVariant& spec);

/// Everything a report function gets to work with: the engine it must run
/// all parallel work on (shared across scenarios in a driver run — that
/// sharing is the fabric-cache win) and the stream for human-readable
/// output.
struct RunContext {
    core::SweepEngine& engine;
    std::ostream& out;
};

/// Runs the (possibly overridden) spec and produces the figure's report.
/// Throws std::invalid_argument when handed the wrong spec kind.
using ReportFn = std::function<JsonReport(const SpecVariant&, RunContext&)>;

struct Scenario {
    std::string name;     ///< Registry key ("fig3", "serving", ...).
    std::string summary;  ///< One-liner for --list.
    SpecVariant spec;     ///< The figure's canonical spec.
    ReportFn report;
    /// False for mapping-only scenarios (fig4) whose report never runs an
    /// NoI evaluation: the driver then refuses to count eval-affecting
    /// --set keys (see is_eval_override_key) as applied to them, keeping
    /// the "--set must land somewhere" typo guard honest.
    bool uses_eval = true;
};

class Registry {
public:
    /// Registers a scenario; throws std::invalid_argument on a duplicate
    /// name or a missing report function.
    void add(Scenario s);

    [[nodiscard]] const Scenario* find(const std::string& name) const;
    /// Lookup that throws std::invalid_argument listing the known names.
    [[nodiscard]] const Scenario& at(const std::string& name) const;
    /// Registration order (the driver's default run order).
    [[nodiscard]] const std::vector<Scenario>& scenarios() const { return scenarios_; }

    /// The built-in figure/table scenarios (constructed once, immutable).
    [[nodiscard]] static const Registry& builtin();

private:
    std::vector<Scenario> scenarios_;
};

// ---- Spec mutation (CLI) ----------------------------------------------------

/// Points every seed in the spec at `seed` (sweep run_seed / serve
/// base_seed / moo3d annealer seed / scaling mix_seed) — the bench
/// `--seed` contract. A no-op on Transformer specs, which are fully
/// deterministic and carry no seed.
void set_seed(SpecVariant& spec, std::uint64_t seed);

/// The seed a run of `spec` will actually use (the mirror of set_seed).
/// Reports record it as run_info provenance; 0 for seedless kinds.
[[nodiscard]] std::uint64_t effective_seed(const SpecVariant& spec);

/// Applies one `--set key=value` override in place. Returns false when
/// the key is recognized but meaningless for this spec kind (e.g.
/// max_requests on a batch sweep, seed on a Transformer study) so the
/// caller can insist that every override lands somewhere; throws
/// std::invalid_argument for unknown keys or malformed values. Supported
/// keys: grid, grids, archs, mixes, traffic_scale (accepts "1/128"),
/// max_cycles, injection_rate, sim_core, swap_seed, greedy_max_gap, seed,
/// max_requests, replications, loads, fabrics, max_batch, balance,
/// iterations, workloads, models, batches, sides, lambdas.
bool apply_override(SpecVariant& spec, std::string_view key,
                    std::string_view value);

/// One-line list of the supported override keys, for error messages.
[[nodiscard]] std::string override_keys_help();

/// Splits "a,b,c" into non-empty items — the list syntax shared by the
/// override values and the driver's --only flag.
[[nodiscard]] std::vector<std::string> split_csv(std::string_view value);

/// True for --set keys that mutate the spec's EvalConfigs (traffic_scale,
/// max_cycles, injection_rate, sim_core) — a no-op on scenarios whose
/// report never evaluates the NoI (Scenario::uses_eval == false).
[[nodiscard]] bool is_eval_override_key(std::string_view key);

// ---- Scenario files ---------------------------------------------------------

/// Loads a scenario from a JSON file. Two shapes:
///   {"scenario": "fig3", "name"?, "spec"?}   — a registered scenario,
///     optionally relabeled and/or with a replacement spec of its kind;
///   {"kind": "sweep"|"serve_grid"|"cluster", "spec": {...}, "name"?} — a
///     bare spec run through the generic report for its kind. The other
///     kinds (moo3d, transformer, scaling) have no generic report —
///     reference them through their registered scenario
///     ({"scenario": "fig6", ...}) instead; a bare-kind file is rejected
///     with that hint.
/// Unknown top-level keys are rejected. Throws std::invalid_argument
/// (parse/validation) or std::runtime_error (unreadable file).
[[nodiscard]] Scenario load_scenario_file(const std::string& path,
                                          const Registry& registry);

/// The generic report functions backing bare-spec scenario files.
[[nodiscard]] ReportFn generic_sweep_report();
[[nodiscard]] ReportFn serving_grid_report();
[[nodiscard]] ReportFn cluster_capacity_report();

}  // namespace floretsim::scenario
