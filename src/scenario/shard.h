#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/sweep.h"

namespace floretsim::scenario {

/// Process-level sweep distribution. The contract, pinned end to end by
/// the shard_parity ctest:
///
///   request:  a serialized SweepPoint list (scenario::to_json) written
///             to a file — the self-contained work order from PR 4;
///   worker:   `floretsim_run --worker --points FILE [--shard i/N]`
///             evaluates its slice on a local SweepEngine and streams one
///             newline-delimited JSON row per point as it finishes, each
///             tagged with the point's *global* index (completion order
///             is arbitrary; content per index is deterministic), plus
///             {"hb": {...}} heartbeat envelopes reporting live progress;
///   merge:    the coordinator places rows back into point order (and
///             skips heartbeat lines), so the unchanged report functions
///             see exactly what a local SweepEngine::run would have
///             produced — every figure is bit-identical in 1 process,
///             N threads, or N processes, with tracing/metrics on or off.
///
/// The same worker CLI is the multi-host seam: ship one points file to N
/// hosts, run each with a different `--shard i/N`, concatenate the row
/// streams, merge by index.

// ---- Shard planning ---------------------------------------------------------

/// Global point indices owned by `shard` of `n_shards`: the round-robin
/// slice shard, shard + n_shards, shard + 2*n_shards, ... Round-robin
/// rather than contiguous blocks because expansion order is arch-major —
/// a block split would hand every point of one architecture (and its
/// distinct per-arch cost) to a single worker. Throws
/// std::invalid_argument unless 0 <= shard < n_shards.
[[nodiscard]] std::vector<std::size_t> shard_indices(std::size_t n_points,
                                                     std::int32_t shard,
                                                     std::int32_t n_shards);

/// Parses the worker's "--shard i/N" argument (0-based shard index).
/// Throws std::invalid_argument on malformed input or i >= N.
[[nodiscard]] std::pair<std::int32_t, std::int32_t> parse_shard_arg(
    const std::string& s);

/// Validates and clamps a worker's --threads request: negative requests
/// are an error (throws std::invalid_argument — the coordinator must see
/// the worker die, not silently run serial), 0 keeps the engine's
/// hardware-concurrency default, and explicit requests are clamped to
/// [1, min(n_points, kMaxWorkerThreads)] — a thread per point is the most
/// a shard can use. Clamps are noted on `err`.
inline constexpr std::int32_t kMaxWorkerThreads = 256;
[[nodiscard]] std::int32_t clamp_worker_threads(std::int32_t requested,
                                                std::size_t n_points,
                                                std::ostream& err);

// ---- The worker protocol ----------------------------------------------------

/// Parses a points file's text. Rejects (std::invalid_argument) malformed
/// JSON, malformed points, and the empty list — a worker handed no work
/// is a coordinator bug, not a successful no-op.
[[nodiscard]] std::vector<core::SweepPoint> points_from_text(
    std::string_view text, const std::string& context);

/// One line of the worker's row stream: the global point index plus the
/// finished row.
struct IndexedRow {
    std::size_t index = 0;
    core::SweepRow row;
};

/// Serializes one row-stream line: {"index": i, "row": {...}}, compact
/// (single line, no trailing newline).
[[nodiscard]] std::string worker_row_line(std::size_t index,
                                          const core::SweepRow& row);

/// Parses one row-stream line; strict (exactly the keys index and row).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] IndexedRow worker_row_from_line(std::string_view line);

/// Live progress report from a worker: which shard it is, how far through
/// its slice it is, and its wall clock so far. Emitted as its own NDJSON
/// envelope {"hb": {...}} interleaved with the {"index","row"} lines, so
/// the coordinator can print per-shard progress and a straggler summary
/// while the sweep runs — the visibility layer the ROADMAP's
/// work-stealing fleet will steer by.
struct Heartbeat {
    std::int32_t shard = 0;
    std::int32_t n_shards = 1;
    std::uint64_t done = 0;   ///< Points finished (rows + failures).
    std::uint64_t total = 0;  ///< Points in this shard's slice.
    double seconds = 0.0;     ///< Worker wall clock since slice start.

    friend bool operator==(const Heartbeat&, const Heartbeat&) = default;
};

/// Serializes one heartbeat line: {"hb": {...}}, compact (single line, no
/// trailing newline).
[[nodiscard]] std::string heartbeat_line(const Heartbeat& hb);

/// One parsed line of a worker stream: exactly one of `row` / `hb` is
/// set. Rows and heartbeats share the stream, so consumers dispatch on
/// the envelope instead of assuming every line is a row.
struct StreamLine {
    std::optional<IndexedRow> row;
    std::optional<Heartbeat> hb;
};

/// Parses one worker-stream line: a {"hb": {...}} heartbeat (strict:
/// exactly the keys shard/n_shards/done/total/seconds, valid shard range,
/// done <= total, finite non-negative seconds) or an {"index","row"}
/// envelope. Throws std::invalid_argument on anything else.
[[nodiscard]] StreamLine stream_line_from(std::string_view line);

/// Where run_worker_points sends heartbeats: `out` null disables them
/// (the default keeps unit-test call sites row-only); shard/n_shards
/// label the envelopes.
struct HeartbeatSink {
    std::ostream* out = nullptr;
    std::int32_t shard = 0;
    std::int32_t n_shards = 1;
};

/// Worker-side execution: evaluates points[i] for each global index i in
/// `indices` on the engine's pool, writing one row-stream line to
/// `rows_out` as each point finishes (mutex-serialized, flushed per line
/// so the coordinator sees rows while the shard still runs). A point that
/// throws is reported on `err` as "point <global index> failed: <what>"
/// and does not emit a row; the remaining points still run. Returns the
/// number of failed points — the worker's exit code must be nonzero when
/// this is. When `hb.out` is set, a heartbeat is written there before the
/// first point and after every completed one (failures count as done —
/// progress, not success).
[[nodiscard]] std::size_t run_worker_points(
    core::SweepEngine& engine, const std::vector<core::SweepPoint>& points,
    const std::vector<std::size_t>& indices, std::ostream& rows_out,
    std::ostream& err, const HeartbeatSink& hb = {});

// ---- Process-coordination helpers ------------------------------------------
// Shared by the one-shot shard coordinator below and the persistent
// fleet coordinator (src/fleet/): anything that spawns workers and reads
// their exit status needs all three.

/// Ignores SIGPIPE process-wide (idempotent; leaves a non-default
/// disposition installed by the host application alone). A coordinator
/// writing a frame to a worker that just died must see EPIPE from
/// write(), not a fatal signal — one dead worker can never take the
/// whole sweep down with it.
void ensure_sigpipe_ignored();

/// Human-readable description of a waitpid()/pclose() status:
/// "exited with status 3" or "died on signal 9 (Killed)".
[[nodiscard]] std::string describe_wait_status(int status);

/// Absorbs one worker's --trace-out / --metrics-out file into the
/// process-global obs sinks. Lenient by design: observability must never
/// fail a sweep that produced correct rows, so a missing or corrupt file
/// is a warning on `warn` (null = silent), not an error. Empty paths are
/// skipped.
void absorb_worker_obs(const std::string& trace_path,
                       const std::string& metrics_path, std::int32_t worker,
                       std::ostream* warn);

// ---- The local coordinator --------------------------------------------------

struct ShardOptions {
    /// Path to the floretsim_run binary to spawn in --worker mode
    /// (normally self_exe_path(argv[0])).
    std::string worker_exe;
    std::int32_t n_shards = 2;
    /// --threads handed to every worker (0 = hardware concurrency).
    std::int32_t threads_per_worker = 0;
    /// Stream for live per-shard progress lines and the end-of-sweep
    /// straggler/imbalance summary (null = silent). The coordinator's
    /// default is stderr, keeping stdout's report machinery clean.
    std::ostream* progress = nullptr;
    /// Minimum seconds between progress lines per shard (first and final
    /// heartbeats always print).
    double progress_interval_s = 0.5;
};

/// This process's executable path: /proc/self/exe when readable (Linux),
/// else `argv0` as given.
[[nodiscard]] std::string self_exe_path(const char* argv0);

/// Streaming merge over per-shard NDJSON row files: one up-front indexing
/// scan per file records each point's (file, byte offset) — validating
/// that every point has exactly one row and skipping heartbeat envelopes
/// — and next() then seeks and parses ONE line per call, yielding rows in
/// point order. Coordinator memory is O(points) small fixed-size index
/// entries plus a single resident row, never O(rows) of parsed results —
/// the property that lets a million-point sweep merge in constant memory,
/// pinned by peak_resident_rows() in the shard tests. The indexing scan
/// throws std::runtime_error (with the owning shard in the message) on an
/// unreadable file, an unparseable line, an out-of-range index, or a
/// duplicate/missing point. `cleanup` is an opaque owner of whatever must
/// stay alive while rows are being read (the coordinator's scratch
/// directory): it is released — running its captured destructors — when
/// the stream is destroyed or its construction fails, so the directory
/// disappears even when the consumer abandons the stream mid-iteration.
class MergedRowFileStream final : public core::RowStream {
public:
    MergedRowFileStream(std::vector<std::string> row_paths, std::size_t n_points,
                        std::function<void()> cleanup = {});
    ~MergedRowFileStream() override;
    MergedRowFileStream(const MergedRowFileStream&) = delete;
    MergedRowFileStream& operator=(const MergedRowFileStream&) = delete;

    [[nodiscard]] std::optional<core::SweepRow> next() override;
    [[nodiscard]] std::size_t size() const override { return locs_.size(); }

    /// The most parsed rows this stream ever held at once — 1 by
    /// construction; a regression back to materialize-then-merge would
    /// make it the row count.
    [[nodiscard]] std::size_t peak_resident_rows() const { return peak_resident_; }

private:
    struct Loc {
        std::uint32_t file = 0;
        std::uint64_t offset = 0;
    };
    std::vector<std::string> row_paths_;
    std::vector<std::unique_ptr<std::istream>> files_;  ///< One open reader per file.
    std::vector<Loc> locs_;  ///< Per point, in point order.
    std::function<void()> cleanup_;
    std::size_t pos_ = 0;
    std::size_t peak_resident_ = 0;
};

/// Runs `points` across opt.n_shards worker subprocesses (popen for
/// process control; one points file in, one --rows-out NDJSON file per
/// shard back — files rather than pipes so a shard bigger than a pipe
/// buffer never blocks its worker's compute) and returns the rows as an
/// ordered stream over those files: the workers run to completion inside
/// this call (rows complete in arbitrary order, so point order only
/// exists once every shard is done), but the merge is lazy — see
/// MergedRowFileStream. The scratch directory holding the row files is
/// owned by the returned stream and removed when it is destroyed; on any
/// failure path (worker died, spawn failed, corrupt rows) it is removed
/// before the exception leaves this function — a dead worker never leaks
/// temp files. The popen pipes carry the workers' heartbeat streams: the
/// coordinator polls them while the workers run, printing live per-shard
/// progress and a final straggler/imbalance summary to opt.progress.
/// When the process tracer/metrics registry is enabled, each worker
/// additionally writes its own trace/metrics file into the scratch
/// directory and the coordinator absorbs them — one merged Chrome trace,
/// one merged metrics snapshot, across every shard. When
/// threads_per_worker is 0 the hardware threads are split across the
/// shards; an explicit value is passed through. Empty shards are avoided
/// by capping the shard count at the point count. Throws
/// std::runtime_error when a worker cannot be spawned or exits nonzero
/// (the failing point's index is on the worker's inherited stderr), and
/// the indexing scan throws on unparseable/missing/duplicate rows.
[[nodiscard]] std::unique_ptr<core::RowStream> run_sharded_stream(
    const ShardOptions& opt, const std::vector<core::SweepPoint>& points);

/// run_sharded_stream collected into a vector — the convenience form for
/// tests and callers that want every row materialized.
[[nodiscard]] std::vector<core::SweepRow> run_sharded(
    const ShardOptions& opt, const std::vector<core::SweepPoint>& points);

/// Installs run_sharded_stream as `engine`'s stream executor: every
/// subsequent SweepEngine::run / run_stream distributes across
/// opt.n_shards worker processes without the report functions changing at
/// all, and — because the engine partitions cache hits out of the
/// dispatched point list first — a fully warm result cache forks zero
/// workers.
void install_shard_executor(core::SweepEngine& engine, ShardOptions opt);

}  // namespace floretsim::scenario
