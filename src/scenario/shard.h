#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/sweep.h"

namespace floretsim::scenario {

/// Process-level sweep distribution. The contract, pinned end to end by
/// the shard_parity ctest:
///
///   request:  a serialized SweepPoint list (scenario::to_json) written
///             to a file — the self-contained work order from PR 4;
///   worker:   `floretsim_run --worker --points FILE [--shard i/N]`
///             evaluates its slice on a local SweepEngine and streams one
///             newline-delimited JSON row per point as it finishes, each
///             tagged with the point's *global* index (completion order
///             is arbitrary; content per index is deterministic);
///   merge:    the coordinator places rows back into point order, so the
///             unchanged report functions see exactly what a local
///             SweepEngine::run would have produced — every figure is
///             bit-identical in 1 process, N threads, or N processes.
///
/// The same worker CLI is the multi-host seam: ship one points file to N
/// hosts, run each with a different `--shard i/N`, concatenate the row
/// streams, merge by index.

// ---- Shard planning ---------------------------------------------------------

/// Global point indices owned by `shard` of `n_shards`: the round-robin
/// slice shard, shard + n_shards, shard + 2*n_shards, ... Round-robin
/// rather than contiguous blocks because expansion order is arch-major —
/// a block split would hand every point of one architecture (and its
/// distinct per-arch cost) to a single worker. Throws
/// std::invalid_argument unless 0 <= shard < n_shards.
[[nodiscard]] std::vector<std::size_t> shard_indices(std::size_t n_points,
                                                     std::int32_t shard,
                                                     std::int32_t n_shards);

/// Parses the worker's "--shard i/N" argument (0-based shard index).
/// Throws std::invalid_argument on malformed input or i >= N.
[[nodiscard]] std::pair<std::int32_t, std::int32_t> parse_shard_arg(
    const std::string& s);

/// Validates and clamps a worker's --threads request: negative requests
/// are an error (throws std::invalid_argument — the coordinator must see
/// the worker die, not silently run serial), 0 keeps the engine's
/// hardware-concurrency default, and explicit requests are clamped to
/// [1, min(n_points, kMaxWorkerThreads)] — a thread per point is the most
/// a shard can use. Clamps are noted on `err`.
inline constexpr std::int32_t kMaxWorkerThreads = 256;
[[nodiscard]] std::int32_t clamp_worker_threads(std::int32_t requested,
                                                std::size_t n_points,
                                                std::ostream& err);

// ---- The worker protocol ----------------------------------------------------

/// Parses a points file's text. Rejects (std::invalid_argument) malformed
/// JSON, malformed points, and the empty list — a worker handed no work
/// is a coordinator bug, not a successful no-op.
[[nodiscard]] std::vector<core::SweepPoint> points_from_text(
    std::string_view text, const std::string& context);

/// One line of the worker's row stream: the global point index plus the
/// finished row.
struct IndexedRow {
    std::size_t index = 0;
    core::SweepRow row;
};

/// Serializes one row-stream line: {"index": i, "row": {...}}, compact
/// (single line, no trailing newline).
[[nodiscard]] std::string worker_row_line(std::size_t index,
                                          const core::SweepRow& row);

/// Parses one row-stream line; strict (exactly the keys index and row).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] IndexedRow worker_row_from_line(std::string_view line);

/// Worker-side execution: evaluates points[i] for each global index i in
/// `indices` on the engine's pool, writing one row-stream line to
/// `rows_out` as each point finishes (mutex-serialized, flushed per line
/// so the coordinator sees rows while the shard still runs). A point that
/// throws is reported on `err` as "point <global index> failed: <what>"
/// and does not emit a row; the remaining points still run. Returns the
/// number of failed points — the worker's exit code must be nonzero when
/// this is.
[[nodiscard]] std::size_t run_worker_points(
    core::SweepEngine& engine, const std::vector<core::SweepPoint>& points,
    const std::vector<std::size_t>& indices, std::ostream& rows_out,
    std::ostream& err);

// ---- The local coordinator --------------------------------------------------

struct ShardOptions {
    /// Path to the floretsim_run binary to spawn in --worker mode
    /// (normally self_exe_path(argv[0])).
    std::string worker_exe;
    std::int32_t n_shards = 2;
    /// --threads handed to every worker (0 = hardware concurrency).
    std::int32_t threads_per_worker = 0;
};

/// This process's executable path: /proc/self/exe when readable (Linux),
/// else `argv0` as given.
[[nodiscard]] std::string self_exe_path(const char* argv0);

/// Runs `points` across opt.n_shards worker subprocesses (popen for
/// process control; one points file in, one --rows-out NDJSON file per
/// shard back — files rather than pipes so a shard bigger than a pipe
/// buffer never blocks its worker's compute) and returns the rows merged
/// into point order. When threads_per_worker is 0 the hardware threads
/// are split across the shards; an explicit value is passed through.
/// Empty shards are avoided by capping the shard count at the point
/// count. Throws std::runtime_error when a worker cannot be spawned,
/// exits nonzero (the failing point's index is on the worker's inherited
/// stderr), returns an unparseable row, or the merged set has
/// missing/duplicate indices.
[[nodiscard]] std::vector<core::SweepRow> run_sharded(
    const ShardOptions& opt, const std::vector<core::SweepPoint>& points);

/// Installs run_sharded as `engine`'s point-list executor: every
/// subsequent SweepEngine::run distributes across opt.n_shards worker
/// processes without the report functions changing at all.
void install_shard_executor(core::SweepEngine& engine, ShardOptions opt);

}  // namespace floretsim::scenario
