#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/core/sweep.h"

namespace floretsim::scenario {

/// The spec-hash identity of a cache entry or scenario spec: FNV-1a over
/// a format-version tag plus the *canonical* compact JSON serialization
/// (scenario::to_json always emits every field in fixed order, doubles at
/// max_digits10), so the hash is invariant under JSON key order and
/// whitespace of any user-side representation — two specs hash equal iff
/// they parse to equal values — and every semantic field change changes
/// it. Bump kCacheFormatVersion to invalidate all existing entries (e.g.
/// when the row wire format or the evaluator semantics change).
inline constexpr const char* kCacheFormatVersion = "floretsim-cache-v1";

[[nodiscard]] std::uint64_t point_hash(const core::SweepPoint& point);

/// Content-addressed on-disk row cache (the --cache-dir backend): one
/// file per point, named <hex(point_hash)>.json, holding the serialized
/// SweepRow. Lookups parse, validate, and require the stored point to
/// equal the requested one (hash-collision/stale-format guard); any
/// corrupt, truncated, or mismatched entry is evicted and reported as a
/// miss — the engine recomputes, so a damaged cache can never serve bad
/// rows. Writes are atomic (temp file + rename), so concurrent processes
/// sharing a cache directory never observe torn entries.
///
/// Counters (also mirrored into obs::MetricsRegistry when enabled, as
/// result_cache.hits / .misses / .stores / .evictions):
///   hits    — lookups served from disk;
///   misses  — probes that found no entry;
///   stores  — rows written;
///   evictions — corrupt/mismatched entries removed on lookup.
class ResultCache final : public core::PointResultCache {
public:
    /// Creates `dir` (and parents) if needed. Throws std::runtime_error
    /// when the directory cannot be created or is not writable.
    explicit ResultCache(std::string dir);

    [[nodiscard]] bool probe(const core::SweepPoint& point) override;
    [[nodiscard]] std::optional<core::SweepRow> lookup(
        const core::SweepPoint& point) override;
    void store(const core::SweepPoint& point, const core::SweepRow& row) override;

    /// Pure existence check by hash — no counters, no validation. The
    /// --list path uses this so inspecting the cache never skews the
    /// hit/miss statistics of the run.
    [[nodiscard]] bool contains_hash(std::uint64_t hash) const;
    /// The entry file path for a point hash (diagnostics and tests).
    [[nodiscard]] std::string entry_path(std::uint64_t hash) const;

    [[nodiscard]] const std::string& dir() const { return dir_; }
    [[nodiscard]] std::int64_t hits() const { return hits_.load(); }
    [[nodiscard]] std::int64_t misses() const { return misses_.load(); }
    [[nodiscard]] std::int64_t stores() const { return stores_.load(); }
    [[nodiscard]] std::int64_t evictions() const { return evictions_.load(); }

private:
    std::string dir_;
    std::atomic<std::int64_t> hits_{0};
    std::atomic<std::int64_t> misses_{0};
    std::atomic<std::int64_t> stores_{0};
    std::atomic<std::int64_t> evictions_{0};
};

}  // namespace floretsim::scenario
