#include <algorithm>
#include <cctype>
#include <fstream>
#include <memory>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "src/core/mapper.h"
#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/transformer.h"
#include "src/pim/partitioner.h"
#include "src/scenario/registry.h"
#include "src/serve/cluster.h"
#include "src/serve/simulator.h"
#include "src/serve/sweep.h"
#include "src/thermal/power.h"
#include "src/topo/mesh.h"
#include "src/util/table.h"

/// The built-in figure/table scenarios: the sweep-driven paper benches,
/// expressed as (spec, report function) pairs over the shared engine.
/// Each report function is the *only* implementation of its figure — the
/// standalone bench binaries and the floretsim_run driver both execute it
/// through the registry, which is what makes their rows bit-identical.

namespace floretsim::scenario {
namespace {

namespace experiment = core::experiment;
using experiment::Arch;

/// Extracts the spec alternative a report function needs, naming both the
/// scenario and the offending kind on a mismatch.
template <typename Spec>
const Spec& as_kind(const SpecVariant& spec, const char* scenario,
                    const char* kind) {
    if (const auto* s = std::get_if<Spec>(&spec)) return *s;
    throw std::invalid_argument(std::string(scenario) + " needs a \"" + kind +
                                "\" spec, got " + spec_kind_name(spec));
}

const core::SweepSpec& as_sweep(const SpecVariant& spec, const char* scenario) {
    return as_kind<core::SweepSpec>(spec, scenario, "sweep");
}

const ServeGridSpec& as_serve_grid(const SpecVariant& spec, const char* scenario) {
    return as_kind<ServeGridSpec>(spec, scenario, "serve_grid");
}

const ClusterSpec& as_cluster(const SpecVariant& spec, const char* scenario) {
    return as_kind<ClusterSpec>(spec, scenario, "cluster");
}

const Moo3dSpec& as_moo3d(const SpecVariant& spec, const char* scenario) {
    return as_kind<Moo3dSpec>(spec, scenario, "moo3d");
}

const TransformerSpec& as_transformer(const SpecVariant& spec,
                                      const char* scenario) {
    return as_kind<TransformerSpec>(spec, scenario, "transformer");
}

const ScalingSpec& as_scaling(const SpecVariant& spec, const char* scenario) {
    return as_kind<ScalingSpec>(spec, scenario, "scaling");
}

/// Index of the normalization architecture: Floret when swept (the
/// paper's baseline), otherwise the first architecture — looked up by
/// Arch, never by position, so reordering spec.archs cannot silently
/// normalize against the wrong column.
std::size_t norm_arch_index(const core::SweepSpec& spec) {
    for (std::size_t a = 0; a < spec.archs.size(); ++a)
        if (spec.archs[a] == Arch::kFloret) return a;
    return 0;
}

/// Row label for (mix, grid): the mix name, qualified by the grid size
/// when the spec sweeps more than one grid.
std::string row_label(const core::SweepSpec& spec, std::size_t g, std::size_t m) {
    std::string label = spec.mixes[m].name;
    if (spec.grids.size() > 1)
        label += "@" + std::to_string(spec.grids[g].first) + "x" +
                 std::to_string(spec.grids[g].second);
    return label;
}

// ---- fig3 / fig5: normalized latency & energy sweeps ------------------------

/// Shared shape of the Fig. 3/5 reports: run the arch x grid x mix sweep,
/// normalize a per-point metric to the Floret column, tabulate.
template <typename Metric>
JsonReport normalized_sweep_report(const core::SweepSpec& spec, RunContext& ctx,
                                   const std::string& report_name,
                                   const std::string& table_key,
                                   const std::string& value_label, Metric metric,
                                   double unit_scale, int unit_precision,
                                   bool warn_on_cap, double* worst_ratio_out,
                                   std::vector<double>* arch_ratio_sums_out) {
    if (spec.archs.empty() || spec.mixes.empty() || spec.grids.empty())
        throw std::invalid_argument(report_name +
                                    ": spec needs archs, grids, and mixes");
    const auto sweep = ctx.engine.run(spec);
    const std::size_t norm = norm_arch_index(spec);

    std::vector<std::string> header{"Mix"};
    for (const auto a : spec.archs) header.emplace_back(experiment::arch_name(a));
    header.push_back(std::string(experiment::arch_name(spec.archs[norm])) + " " +
                     value_label);
    util::TextTable t(header);

    double worst_ratio = 0.0;
    std::vector<double> ratio_sums(spec.archs.size(), 0.0);
    for (std::size_t g = 0; g < spec.grids.size(); ++g) {
        for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
            std::vector<double> value;
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                const auto& row = sweep.at(a, g, m);
                if (warn_on_cap && !row.result.all_completed)
                    ctx.out << "warning: " << experiment::arch_name(row.point.arch)
                            << "/" << row.point.mix.name
                            << " hit the cycle cap\n";
                value.push_back(metric(row.result));
            }
            const double base = value[norm];
            std::vector<std::string> cells{row_label(spec, g, m)};
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                const double ratio = value[a] / base;
                ratio_sums[a] += ratio;
                if (a != norm) worst_ratio = std::max(worst_ratio, ratio);
                cells.push_back(a == norm ? "1.00" : util::TextTable::fmt(ratio));
            }
            cells.push_back(
                util::TextTable::fmt(base / unit_scale, unit_precision));
            t.add_row(std::move(cells));
        }
    }
    t.print(ctx.out);

    JsonReport report(report_name);
    report.add_table(table_key, t);
    if (worst_ratio_out) *worst_ratio_out = worst_ratio;
    if (arch_ratio_sums_out) *arch_ratio_sums_out = ratio_sums;
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    report.add_metric("sweep_threads", ctx.engine.thread_count());
    add_point_timing(report, sweep);
    ctx.out << "\nSweep: " << sweep.rows.size() << " points on "
            << ctx.engine.thread_count() << " thread(s) in "
            << util::TextTable::fmt(sweep.wall_seconds, 2) << " s\n";
    return report;
}

JsonReport fig3_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "fig3");
    ctx.out << "=== Fig. 3: NoI latency, " << spec.grids.front().first *
                   spec.grids.front().second
            << " chiplets (normalized to "
            << experiment::arch_name(spec.archs[norm_arch_index(spec)])
            << ") ===\n\n";
    double worst_ratio = 0.0;
    auto report = normalized_sweep_report(
        spec, ctx, "fig3_latency", "latency_normalized", "cycles",
        [](const experiment::DynamicResult& r) { return r.total_cycles; },
        /*unit_scale=*/1.0, /*unit_precision=*/0, /*warn_on_cap=*/true,
        &worst_ratio, nullptr);
    report.add_metric("worst_ratio", worst_ratio);
    ctx.out << "Worst baseline/"
            << experiment::arch_name(spec.archs[norm_arch_index(spec)])
            << " ratio observed: " << util::TextTable::fmt(worst_ratio)
            << "  (paper: up to 2.24x vs Kite/SIAM)\n";
    return report;
}

JsonReport fig5_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "fig5");
    const std::size_t norm = norm_arch_index(spec);
    ctx.out << "=== Fig. 5: NoI energy, " << spec.grids.front().first *
                   spec.grids.front().second
            << " chiplets (normalized to " << experiment::arch_name(spec.archs[norm])
            << ") ===\n\n";
    std::vector<double> ratio_sums;
    auto report = normalized_sweep_report(
        spec, ctx, "fig5_energy", "energy_normalized", "uJ",
        [](const experiment::DynamicResult& r) { return r.total_energy_pj; },
        /*unit_scale=*/1e6, /*unit_precision=*/2, /*warn_on_cap=*/false, nullptr,
        &ratio_sums);
    const double n = static_cast<double>(spec.mixes.size() * spec.grids.size());
    ctx.out << "Mean energy vs " << experiment::arch_name(spec.archs[norm]) << ":";
    for (std::size_t a = 0; a < spec.archs.size(); ++a) {
        if (a == norm) continue;
        const double mean = ratio_sums[a] / n;
        ctx.out << "  " << experiment::arch_name(spec.archs[a]) << " "
                << util::TextTable::fmt(mean) << "x";
        report.add_metric("mean_" + ascii_lower(experiment::arch_name(spec.archs[a])) +
                              "_over_" +
                              ascii_lower(experiment::arch_name(spec.archs[norm])),
                          mean);
    }
    ctx.out << "   (paper: Kite 2.8x, SIAM 1.65x)\n";
    return report;
}

// ---- table2: demand accounting + the dynamic makespan sweep -----------------

JsonReport table2_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "table2");
    ctx.out << "=== Table II: concurrent DNN task mixes ("
            << spec.grids.front().first * spec.grids.front().second
            << "-chiplet system) ===\n"
            << "chiplet capacity " << experiment::kParamsPerChipletM
            << "M params; demand = sum of per-task packed partitions\n\n";

    // Capacity follows the (overridable) grid, not a hardcoded 100.
    const std::int32_t capacity =
        spec.grids.front().first * spec.grids.front().second;
    util::TextTable t({"Name", "Tasks", "Table-I params (B)", "Paper total (B)",
                       "Chiplet demand", "Fits " + std::to_string(capacity) + "?"});
    for (const auto& mix : spec.mixes) {
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(mix);
        const auto tasks =
            core::make_tasks(queue, experiment::kParamsPerChipletM, owner);
        std::int32_t demand = 0;
        for (const auto& task : tasks) demand += task.plan.total_chiplets;
        t.add_row({mix.name, std::to_string(mix.total_instances()),
                   util::TextTable::fmt(mix.table_params_m() / 1e3, 3),
                   util::TextTable::fmt(mix.paper_total_params_b, 1),
                   std::to_string(demand),
                   demand <= capacity ? "yes" : "no (queue waits)"});
    }
    t.print(ctx.out);

    ctx.out << "\nMix composition:\n";
    for (const auto& mix : spec.mixes) {
        ctx.out << "  " << mix.name << ": ";
        for (std::size_t i = 0; i < mix.entries.size(); ++i) {
            if (i) ctx.out << " -> ";
            ctx.out << mix.entries[i].second << "x" << mix.entries[i].first;
        }
        ctx.out << '\n';
    }

    util::TextTable d({"Mix", "NoI", "Makespan (kcyc)", "Energy (uJ)", "Rounds",
                       "Completed"});
    JsonReport report("table2_mixes");
    const auto sweep = ctx.engine.run(spec);
    std::int64_t stepped = 0, skipped = 0, jumps = 0, evals = 0, epoch_hits = 0;
    std::int64_t rg_stepped = 0, rg_skipped = 0, rg_jumps = 0;
    for (std::size_t g = 0; g < spec.grids.size(); ++g) {
        for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                const auto& row = sweep.at(a, g, m);
                d.add_row({row_label(spec, g, m),
                           experiment::arch_name(row.point.arch),
                           util::TextTable::fmt(row.result.total_cycles / 1e3, 1),
                           util::TextTable::fmt(row.result.total_energy_pj / 1e6, 1),
                           std::to_string(row.result.rounds),
                           row.result.all_completed ? "yes" : "NO"});
                stepped += row.result.sim_cycles_stepped;
                skipped += row.result.sim_cycles_skipped;
                jumps += row.result.sim_horizon_jumps;
                rg_stepped += row.result.sim_region_cycles_stepped;
                rg_skipped += row.result.sim_region_cycles_skipped;
                rg_jumps += row.result.sim_region_horizon_jumps;
                evals += row.result.noi_evals;
                epoch_hits += row.result.round_epoch_hits;
            }
        }
    }
    add_point_timing(report, sweep);

    ctx.out << "\n=== Dynamic makespan sweep (arch x mix) ===\n\n";
    d.print(ctx.out);
    const double skip_fraction =
        stepped + skipped > 0
            ? static_cast<double>(skipped) / static_cast<double>(stepped + skipped)
            : 0.0;
    ctx.out << "\nSweep: " << sweep.rows.size() << " points, SweepEngine, "
            << ctx.engine.thread_count() << " thread(s), "
            << util::TextTable::fmt(sweep.wall_seconds, 2) << " s\n"
            << "Simulator: " << stepped << " cycles stepped, " << skipped
            << " skipped (" << util::TextTable::fmt(100.0 * skip_fraction, 1)
            << "% of simulated time) in " << jumps << " horizon jumps; " << evals
            << " NoI evals, " << epoch_hits
            << " rounds reused by the residency epoch cache\n";

    report.add_table("demand", t);
    report.add_table("dynamic_sweep", d);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    report.add_metric("sweep_threads", ctx.engine.thread_count());
    report.add_metric("sweep_serial", 0.0);
    report.add_metric("sim_cycles_stepped", static_cast<double>(stepped));
    report.add_metric("sim_cycles_skipped", static_cast<double>(skipped));
    report.add_metric("sim_horizon_jumps", static_cast<double>(jumps));
    report.add_metric("sim_skip_fraction", skip_fraction);
    report.add_metric("sim_region_cycles_stepped", static_cast<double>(rg_stepped));
    report.add_metric("sim_region_cycles_skipped", static_cast<double>(rg_skipped));
    report.add_metric("sim_region_horizon_jumps", static_cast<double>(rg_jumps));
    report.add_metric("noi_evals", static_cast<double>(evals));
    report.add_metric("round_epoch_hits", static_cast<double>(epoch_hits));
    return report;
}

// ---- fig4: utilization under greedy vs SFC mapping --------------------------

/// Renders a w x h die with one letter per mapped task ('.' = unmapped).
void print_die(std::ostream& out, const std::vector<core::MappedTask>& mapped,
               std::int32_t w, std::int32_t h) {
    std::vector<char> cell(static_cast<std::size_t>(w) * static_cast<std::size_t>(h),
                           '.');
    char label = 'A';
    for (const auto& m : mapped) {
        if (!m.mapped) continue;
        for (const auto n : m.nodes) cell[static_cast<std::size_t>(n)] = label;
        label = label == 'Z' ? 'A' : static_cast<char>(label + 1);
    }
    for (std::int32_t y = 0; y < h; ++y) {
        out << "  ";
        for (std::int32_t x = 0; x < w; ++x)
            out << cell[static_cast<std::size_t>(y * w + x)] << ' ';
        out << '\n';
    }
}

JsonReport fig4_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "fig4");
    if (spec.archs.empty() || spec.mixes.empty() || spec.grids.empty())
        throw std::invalid_argument("fig4: spec needs archs, grids, and mixes");
    const auto [w, h] = spec.grids.front();
    ctx.out << "=== Fig. 4: resource utilization under greedy vs SFC mapping ===\n"
            << "(greedy constrained to <=" << spec.greedy_max_gap
            << "-hop gaps between consecutive layers,\n"
            << " as in the paper's contiguity requirement)\n\n";

    // Mapping is cheap per point but there are mixes x archs of them, and
    // they share the fabrics — a natural engine.map with a hot cache.
    auto& engine = ctx.engine;
    const auto stats =
        engine.map(spec.mixes.size() * spec.archs.size(), [&](std::size_t i) {
            const auto& mix = spec.mixes[i / spec.archs.size()];
            const auto arch = spec.archs[i % spec.archs.size()];
            auto b = experiment::build_arch(engine.cache(), arch, w, h,
                                            spec.swap_seed, spec.greedy_max_gap);
            std::vector<std::unique_ptr<dnn::Network>> owner;
            const auto queue = workload::expand_mix(mix);
            const auto tasks =
                core::make_tasks(queue, experiment::kParamsPerChipletM, owner);
            core::MappingStats s;
            (void)b.mapper->map_queue(tasks, &s);
            return s;
        });

    util::TextTable t({"Mix", "NoI", "Mapped chiplets", "Unmapped", "Tasks ok",
                       "Tasks failed", "Utilization"});
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const auto& s = stats[i];
        t.add_row({spec.mixes[i / spec.archs.size()].name,
                   experiment::arch_name(spec.archs[i % spec.archs.size()]),
                   std::to_string(s.nodes_used),
                   std::to_string(s.nodes_total - s.nodes_used),
                   std::to_string(s.tasks_mapped), std::to_string(s.tasks_failed),
                   util::TextTable::fmt(100.0 * s.utilization(), 1) + "%"});
    }
    t.print(ctx.out);

    // Fig. 4's visual: the first and last swept architectures' dies after
    // greedily mapping the first mix (canonically SWAP vs Floret).
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto queue = workload::expand_mix(spec.mixes.front());
    const auto tasks = core::make_tasks(queue, experiment::kParamsPerChipletM, owner);
    for (const auto arch : {spec.archs.front(), spec.archs.back()}) {
        ctx.out << "\n"
                << experiment::arch_name(arch) << " die after greedy mapping of "
                << spec.mixes.front().name << " (letter = task, . = NM):\n";
        auto b = experiment::build_arch(engine.cache(), arch, w, h, spec.swap_seed,
                                        arch == Arch::kFloret ? -1
                                                              : spec.greedy_max_gap);
        print_die(ctx.out, b.mapper->map_queue(tasks, nullptr), w, h);
    }
    ctx.out << "\nPaper shape: SWAP/SIAM strand NM chiplets under load; Floret "
               "consumes the SFC order fully before any task fails.\n";

    JsonReport report("fig4_utilization");
    report.add_table("utilization", t);
    return report;
}

// ---- serving: the SLA-knee grid ---------------------------------------------

constexpr double kKneeViolationRate = 0.05;

JsonReport serving_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_serve_grid(sv, "serving");
    if (spec.archs.empty() || spec.loads_per_mcycle.empty())
        throw std::invalid_argument("serving: spec needs archs and loads");
    const auto& base = spec.base;

    ctx.out << "=== Serving SLA knee: arch x offered load (" << base.width << "x"
            << base.height << ", " << base.config.arrivals.max_requests
            << " requests x " << base.replications << " replications) ===\n"
            << "tenants:";
    // Describe the tenants/policy the spec actually configures (empty
    // classes select the serve-layer defaults at run time).
    const auto classes = base.config.classes.empty()
                             ? serve::default_request_classes()
                             : base.config.classes;
    for (std::size_t c = 0; c < classes.size(); ++c)
        ctx.out << (c ? " + " : " ") << classes[c].name << " ("
                << util::TextTable::fmt(classes[c].slo_cycles / 1e3, 0)
                << " kcyc SLO)";
    ctx.out << ", " << serve::admission_policy_name(base.config.admission)
            << " admission\nknee threshold: violation rate > "
            << 100.0 * kKneeViolationRate << "%\n\n";

    // Flatten arch x load x replication into one engine fan-out so the
    // slowest (highest-load) points overlap with everything else.
    struct Cell {
        std::size_t arch_idx, load_idx;
    };
    std::vector<Cell> cells;
    for (std::size_t a = 0; a < spec.archs.size(); ++a)
        for (std::size_t l = 0; l < spec.loads_per_mcycle.size(); ++l)
            cells.push_back({a, l});

    auto& engine = ctx.engine;
    const auto n_reps = static_cast<std::size_t>(std::max(base.replications, 1));
    std::vector<double> point_seconds;
    const auto runs = engine.timed_map(
        cells.size() * n_reps,
        [&](std::size_t i) {
            const Cell& cell = cells[i / n_reps];
            auto arch = experiment::build_arch(engine.cache(),
                                               spec.archs[cell.arch_idx],
                                               base.width, base.height,
                                               base.swap_seed, base.greedy_max_gap);
            serve::ServeConfig cfg = base.config;
            cfg.arrivals.rate_per_mcycle = spec.loads_per_mcycle[cell.load_idx];
            cfg.seed = base.base_seed + i % n_reps;
            return serve::serve_requests(arch, cfg);
        },
        point_seconds);

    // Per-load labels: fmt(load, 0) as in the paper tables, disambiguated
    // by index when two user-set loads round to the same text — metric
    // keys must stay unique or the strict JSON contract breaks.
    std::vector<std::string> load_labels;
    for (const double l : spec.loads_per_mcycle)
        load_labels.push_back(util::TextTable::fmt(l, 0));
    for (std::size_t l = 0; l < load_labels.size(); ++l)
        for (std::size_t k = 0; k < l; ++k)
            if (load_labels[k] == load_labels[l]) {
                load_labels[l] += "#" + std::to_string(l);
                break;
            }

    util::TextTable t({"NoI", "Load (req/Mcyc)", "Delivered", "p50 (kcyc)",
                       "p95 (kcyc)", "p99 (kcyc)", "Util", "Queue", "SLA viol"});
    JsonReport report("serving_sla");
    std::vector<double> knee(spec.archs.size(), -1.0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const auto& cell = cells[c];
        const std::span<const serve::ServeStats> reps(&runs[c * n_reps], n_reps);
        const auto agg = serve::aggregate(reps);
        const std::string arch = experiment::arch_name(spec.archs[cell.arch_idx]);
        const std::string& load = load_labels[cell.load_idx];
        t.add_row({arch, load,
                   util::TextTable::fmt(agg.mean_throughput_per_mcycle, 1),
                   util::TextTable::fmt(agg.p50_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(agg.p95_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(agg.p99_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(100.0 * agg.mean_utilization, 1) + "%",
                   util::TextTable::fmt(agg.mean_queue_depth, 1),
                   util::TextTable::fmt(100.0 * agg.sla_violation_rate(), 1) + "%"});
        const std::string key = arch + "_load" + load;
        report.add_metric(key + "_p50_kcyc", agg.p50_latency_cycles / 1e3);
        report.add_metric(key + "_p95_kcyc", agg.p95_latency_cycles / 1e3);
        report.add_metric(key + "_p99_kcyc", agg.p99_latency_cycles / 1e3);
        report.add_metric(key + "_sla_violation_rate", agg.sla_violation_rate());
        report.add_metric(key + "_throughput_per_mcyc",
                          agg.mean_throughput_per_mcycle);
        if (agg.sla_violation_rate() > kKneeViolationRate) {
            // Lowest violating load, independent of the (user-settable)
            // load-list ordering.
            const double l = spec.loads_per_mcycle[cell.load_idx];
            if (knee[cell.arch_idx] < 0.0 || l < knee[cell.arch_idx])
                knee[cell.arch_idx] = l;
        }
    }
    t.print(ctx.out);

    const double max_load = *std::max_element(spec.loads_per_mcycle.begin(),
                                              spec.loads_per_mcycle.end());
    ctx.out << "\nSLA knee (lowest load with violation rate > "
            << 100.0 * kKneeViolationRate << "%):\n";
    for (std::size_t a = 0; a < spec.archs.size(); ++a) {
        ctx.out << "  " << experiment::arch_name(spec.archs[a]) << ": "
                << (knee[a] < 0.0 ? "beyond " + util::TextTable::fmt(max_load, 0)
                                  : util::TextTable::fmt(knee[a], 0))
                << " req/Mcyc\n";
        report.add_metric(
            std::string(experiment::arch_name(spec.archs[a])) + "_knee_load",
            knee[a]);
    }
    std::int64_t stepped = 0, skipped = 0, jumps = 0, rounds = 0, hits = 0;
    std::int64_t rg_stepped = 0, rg_skipped = 0, rg_jumps = 0;
    for (const auto& s : runs) {
        stepped += s.sim_cycles_stepped;
        skipped += s.sim_cycles_skipped;
        jumps += s.sim_horizon_jumps;
        rg_stepped += s.sim_region_cycles_stepped;
        rg_skipped += s.sim_region_cycles_skipped;
        rg_jumps += s.sim_region_horizon_jumps;
        rounds += s.noi_rounds;
        hits += s.noi_cache_hits;
    }
    const double skip_fraction =
        stepped + skipped > 0
            ? static_cast<double>(skipped) / static_cast<double>(stepped + skipped)
            : 0.0;
    ctx.out << "\nSimulator: " << stepped << " cycles stepped, " << skipped
            << " skipped (" << util::TextTable::fmt(100.0 * skip_fraction, 1)
            << "% of simulated time) in " << jumps << " horizon jumps; " << rounds
            << " NoI rounds, " << hits << " served from the resident-set cache\n";
    report.add_metric("sim_cycles_stepped", static_cast<double>(stepped));
    report.add_metric("sim_cycles_skipped", static_cast<double>(skipped));
    report.add_metric("sim_horizon_jumps", static_cast<double>(jumps));
    report.add_metric("sim_skip_fraction", skip_fraction);
    report.add_metric("sim_region_cycles_stepped", static_cast<double>(rg_stepped));
    report.add_metric("sim_region_cycles_skipped", static_cast<double>(rg_skipped));
    report.add_metric("sim_region_horizon_jumps", static_cast<double>(rg_jumps));
    report.add_metric("noi_rounds", static_cast<double>(rounds));
    report.add_metric("noi_cache_hits", static_cast<double>(hits));
    add_point_timing(report, point_seconds);

    ctx.out << "\nShape: contiguity-preserving mappers hold the latency "
               "tail flat deeper into the load sweep; the knee is where "
               "queueing delay overwhelms the SLO budget.\n";

    report.add_table("sla_sweep", t);
    return report;
}

// ---- cluster: the capacity-planning grid ------------------------------------

/// Disambiguates repeated formatted labels with a "#idx" suffix, as the
/// serving report does for loads — metric keys must stay unique or the
/// strict JSON contract breaks.
std::vector<std::string> unique_labels(std::vector<std::string> labels) {
    for (std::size_t l = 0; l < labels.size(); ++l)
        for (std::size_t k = 0; k < l; ++k)
            if (labels[k] == labels[l]) {
                labels[l] += "#" + std::to_string(l);
                break;
            }
    return labels;
}

JsonReport cluster_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_cluster(sv, "cluster");
    const auto& base = spec.base;

    ctx.out << "=== Serving capacity plan: cluster size x batch cap x load ("
            << experiment::arch_name(base.arch) << " " << base.width << "x"
            << base.height << " fabrics, " << base.config.arrivals.max_requests
            << " requests x " << base.replications << " replications, "
            << serve::balance_policy_name(spec.balance) << " routing, "
            << serve::admission_policy_name(base.config.admission)
            << " admission) ===\nknee threshold: violation rate > "
            << 100.0 * kKneeViolationRate << "%\n\n";

    // Flatten K x batch x load x replication into one engine fan-out so the
    // saturated (overload) points overlap with everything else. The K
    // fabrics of a cell are replicas of the base arch built over the shared
    // fabric cache: only the first build per process pays.
    struct Cell {
        std::size_t k_idx, b_idx, load_idx;
    };
    std::vector<Cell> cells;
    for (std::size_t k = 0; k < spec.cluster_sizes.size(); ++k)
        for (std::size_t b = 0; b < spec.batch_caps.size(); ++b)
            for (std::size_t l = 0; l < spec.loads_per_mcycle.size(); ++l)
                cells.push_back({k, b, l});

    auto& engine = ctx.engine;
    const auto n_reps = static_cast<std::size_t>(std::max(base.replications, 1));
    std::vector<double> point_seconds;
    const auto runs = engine.timed_map(
        cells.size() * n_reps,
        [&](std::size_t i) {
            const Cell& cell = cells[i / n_reps];
            const auto fabric_count =
                static_cast<std::size_t>(spec.cluster_sizes[cell.k_idx]);
            std::vector<experiment::BuiltArch> fabrics;
            fabrics.reserve(fabric_count);
            for (std::size_t f = 0; f < fabric_count; ++f)
                fabrics.push_back(experiment::build_arch(
                    engine.cache(), base.arch, base.width, base.height,
                    base.swap_seed, base.greedy_max_gap));
            serve::ServeConfig cfg = base.config;
            cfg.max_batch = spec.batch_caps[cell.b_idx];
            cfg.arrivals.rate_per_mcycle = spec.loads_per_mcycle[cell.load_idx];
            cfg.seed = base.base_seed + i % n_reps;
            return serve::serve_cluster(fabrics, cfg, spec.balance);
        },
        point_seconds);

    std::vector<std::string> k_labels, b_labels, load_labels;
    for (const auto k : spec.cluster_sizes)
        k_labels.push_back(std::to_string(k));
    for (const auto b : spec.batch_caps) b_labels.push_back(std::to_string(b));
    for (const double l : spec.loads_per_mcycle)
        load_labels.push_back(util::TextTable::fmt(l, 0));
    k_labels = unique_labels(std::move(k_labels));
    b_labels = unique_labels(std::move(b_labels));
    load_labels = unique_labels(std::move(load_labels));

    util::TextTable t({"K", "Batch", "Load (req/Mcyc)", "Delivered",
                       "p99 (kcyc)", "Util", "SLA viol", "Batched", "Preempt",
                       "Evict"});
    JsonReport report("cluster_capacity");
    // SLA knee per (K, batch) curve: the lowest violating load.
    std::vector<double> knee(spec.cluster_sizes.size() * spec.batch_caps.size(),
                             -1.0);
    std::int64_t total_batched = 0, total_preempt = 0, total_evict = 0;
    std::int64_t affinity_hits = 0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const auto& cell = cells[c];
        std::vector<serve::ServeStats> reps;
        reps.reserve(n_reps);
        for (std::size_t r = 0; r < n_reps; ++r) {
            reps.push_back(runs[c * n_reps + r].serve);
            affinity_hits += runs[c * n_reps + r].affinity_hits;
        }
        const auto agg = serve::aggregate(reps);
        total_batched += agg.batched_requests;
        total_preempt += agg.preemptions;
        total_evict += agg.evictions;
        t.add_row({k_labels[cell.k_idx], b_labels[cell.b_idx],
                   load_labels[cell.load_idx],
                   util::TextTable::fmt(agg.mean_throughput_per_mcycle, 1),
                   util::TextTable::fmt(agg.p99_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(100.0 * agg.mean_utilization, 1) + "%",
                   util::TextTable::fmt(100.0 * agg.sla_violation_rate(), 1) +
                       "%",
                   std::to_string(agg.batched_requests),
                   std::to_string(agg.preemptions),
                   std::to_string(agg.evictions)});
        const std::string key = "k" + k_labels[cell.k_idx] + "_b" +
                                b_labels[cell.b_idx] + "_load" +
                                load_labels[cell.load_idx];
        report.add_metric(key + "_p99_kcyc", agg.p99_latency_cycles / 1e3);
        report.add_metric(key + "_sla_violation_rate", agg.sla_violation_rate());
        report.add_metric(key + "_throughput_per_mcyc",
                          agg.mean_throughput_per_mcycle);
        report.add_metric(key + "_batched",
                          static_cast<double>(agg.batched_requests));
        report.add_metric(key + "_preemptions",
                          static_cast<double>(agg.preemptions));
        if (agg.sla_violation_rate() > kKneeViolationRate) {
            const double l = spec.loads_per_mcycle[cell.load_idx];
            double& cur = knee[cell.k_idx * spec.batch_caps.size() + cell.b_idx];
            if (cur < 0.0 || l < cur) cur = l;
        }
    }
    t.print(ctx.out);

    // The capacity curve: where each (K, batch) configuration's SLA knee
    // sits. A knee that moves right with K or batch cap is capacity bought
    // by scale-out or coalescing.
    const double max_load = *std::max_element(spec.loads_per_mcycle.begin(),
                                              spec.loads_per_mcycle.end());
    ctx.out << "\nSLA knee per configuration (lowest load with violation rate > "
            << 100.0 * kKneeViolationRate << "%):\n";
    for (std::size_t k = 0; k < spec.cluster_sizes.size(); ++k)
        for (std::size_t b = 0; b < spec.batch_caps.size(); ++b) {
            const double v = knee[k * spec.batch_caps.size() + b];
            ctx.out << "  K=" << k_labels[k] << " batch=" << b_labels[b] << ": "
                    << (v < 0.0 ? "beyond " + util::TextTable::fmt(max_load, 0)
                                : util::TextTable::fmt(v, 0))
                    << " req/Mcyc\n";
            report.add_metric("k" + k_labels[k] + "_b" + b_labels[b] +
                                  "_knee_load",
                              v);
        }

    std::int64_t rounds = 0, hits = 0;
    for (const auto& r : runs) {
        rounds += r.serve.noi_rounds;
        hits += r.serve.noi_cache_hits;
    }
    ctx.out << "\nFrontend: " << affinity_hits
            << " arrivals routed onto a warm residency; " << total_batched
            << " requests rode a batch, " << total_preempt
            << " preempted across " << total_evict << " evictions; " << rounds
            << " NoI rounds, " << hits << " served from the resident-set cache\n";
    report.add_metric("serve_batched_requests",
                      static_cast<double>(total_batched));
    report.add_metric("serve_preemptions", static_cast<double>(total_preempt));
    report.add_metric("serve_evictions", static_cast<double>(total_evict));
    report.add_metric("serve_affinity_hits",
                      static_cast<double>(affinity_hits));
    report.add_metric("noi_rounds", static_cast<double>(rounds));
    report.add_metric("noi_cache_hits", static_cast<double>(hits));
    add_point_timing(report, point_seconds);

    ctx.out << "\nShape: batching amortizes one fabric evaluation across "
               "coalesced requests and scale-out moves the knee right; "
               "eviction rescues deadline-critical tenants once the fabric "
               "saturates.\n";

    report.add_table("capacity", t);
    return report;
}

// ---- Generic sweep report (bare-spec scenario files) ------------------------

JsonReport generic_sweep(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "sweep");
    if (spec.archs.empty() || spec.mixes.empty() || spec.grids.empty())
        throw std::invalid_argument("sweep: spec needs archs, grids, and mixes");
    ctx.out << "=== Sweep: " << spec.archs.size() << " arch(s) x "
            << spec.grids.size() << " grid(s) x " << spec.mixes.size()
            << " mix(es) ===\n\n";
    const auto sweep = ctx.engine.run(spec);
    util::TextTable t({"Mix", "NoI", "Grid", "Makespan (kcyc)", "Energy (uJ)",
                       "Flit hops", "Rounds", "Completed"});
    for (std::size_t g = 0; g < spec.grids.size(); ++g) {
        for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                const auto& row = sweep.at(a, g, m);
                t.add_row({row.point.mix.name,
                           experiment::arch_name(row.point.arch),
                           std::to_string(row.point.width) + "x" +
                               std::to_string(row.point.height),
                           util::TextTable::fmt(row.result.total_cycles / 1e3, 1),
                           util::TextTable::fmt(row.result.total_energy_pj / 1e6, 1),
                           std::to_string(row.result.flit_hops),
                           std::to_string(row.result.rounds),
                           row.result.all_completed ? "yes" : "NO"});
            }
        }
    }
    t.print(ctx.out);
    ctx.out << "\nSweep: " << sweep.rows.size() << " points on "
            << ctx.engine.thread_count() << " thread(s) in "
            << util::TextTable::fmt(sweep.wall_seconds, 2) << " s\n";
    JsonReport report("sweep");
    report.add_table("sweep_rows", t);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    report.add_metric("sweep_threads", ctx.engine.thread_count());
    add_point_timing(report, sweep);
    return report;
}

// ---- fig2: router ports & link structure ------------------------------------

JsonReport fig2_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_sweep(sv, "fig2");
    if (spec.archs.empty() || spec.grids.empty())
        throw std::invalid_argument("fig2: spec needs archs and grids");
    const auto [w, h] = spec.grids.front();
    ctx.out << "=== Fig. 2(a): router-port configuration, " << w * h
            << " chiplets ===\n\n";

    // The fabrics through the engine's shared cache (route tables are the
    // expensive part and other scenarios in a driver run reuse them).
    auto& engine = ctx.engine;
    const auto fabrics = engine.map(spec.archs.size(), [&](std::size_t i) {
        return engine.cache().get(spec.archs[i], w, h, spec.swap_seed);
    });

    std::size_t max_ports = 0;
    for (const auto& f : fabrics)
        max_ports = std::max(max_ports, f->topology.port_histogram().size());

    std::vector<std::string> header{"Ports"};
    for (const auto& f : fabrics)
        header.emplace_back(experiment::arch_name(f->arch));
    util::TextTable ports(header);
    for (std::size_t p = 1; p < max_ports; ++p) {
        std::vector<std::string> row{std::to_string(p)};
        std::uint64_t total = 0;
        for (const auto& f : fabrics) {
            const auto c = f->topology.port_histogram().at(p);
            total += c;
            row.push_back(std::to_string(c));
        }
        if (total > 0) ports.add_row(std::move(row));
    }
    ports.print(ctx.out);

    ctx.out << "\n=== Fig. 2(b): links, " << w * h << " chiplets ===\n\n";
    util::TextTable links({"NoI", "Total links", "1-hop", "2-hop", ">=3-hop",
                           "Mean length (mm)"});
    for (const auto& f : fabrics) {
        const auto spans = f->topology.link_span_histogram();
        std::uint64_t ge3 = 0;
        for (std::size_t s = 3; s < spans.size(); ++s) ge3 += spans.at(s);
        double len = 0.0;
        for (const auto& l : f->topology.links()) len += l.length_mm;
        links.add_row({experiment::arch_name(f->arch),
                       std::to_string(f->topology.link_count()),
                       std::to_string(spans.at(1)), std::to_string(spans.at(2)),
                       std::to_string(ge3),
                       util::TextTable::fmt(len / f->topology.link_count())});
    }
    links.print(ctx.out);

    ctx.out << "\nPaper shape check: Kite mode=4 ports & 2-hop links; SIAM 3-4 "
               "ports, 1-hop; SWAP 2-3 ports, some long links; Floret ~all "
               "2-port, fewest links.\n";

    JsonReport report("fig2_ports_links");
    report.add_table("ports", ports);
    report.add_table("links", links);
    return report;
}

// ---- fig6 / fig7 / m3d: 3D placement-optimization studies -------------------

core::MooConfig moo_config_of(const Moo3dSpec& s) {
    core::MooConfig moo;
    moo.iterations = s.iterations;
    moo.w_perf = s.w_perf;
    moo.w_thermal = s.w_thermal;
    moo.t_target_k = s.t_target_k;
    moo.seed = s.seed;
    return moo;
}

/// The stack variant a single-variant study runs: the baseline when the
/// spec lists none.
Moo3dVariant first_variant(const Moo3dSpec& s) {
    return s.variants.empty() ? Moo3dVariant{} : s.variants.front();
}

JsonReport fig6_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_moo3d(sv, "fig6");
    if (spec.workloads.empty())
        throw std::invalid_argument("fig6: spec needs workloads");
    ctx.out << "=== Fig. 6: " << spec.width * spec.height * spec.depth
            << "-PE 3D NoC, perf-only (Floret) vs joint "
               "perf-thermal mapping ===\n\n";

    const auto var = first_variant(spec);
    const auto topo3d = topo::make_mesh3d(spec.width, spec.height, spec.depth,
                                          1.0, var.tier_pitch_mm);
    const auto routes = noc::RouteTable::build(topo3d, spec.routing);
    thermal::ThermalConfig tcfg;
    tcfg.g_vertical_w_per_k = var.g_vertical_w_per_k;
    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    const core::MooConfig moo = moo_config_of(spec);

    // Each DNN runs two simulated-annealing optimizations — by far the
    // heaviest per-item work of any scenario, and a perfect engine fan-out.
    struct Pair {
        core::PlacementEval perf_only;
        core::PlacementEval joint;
    };
    auto& engine = ctx.engine;
    const auto pairs = engine.map(spec.workloads.size(), [&](std::size_t i) {
        const auto& w = workload::workload_by_id(spec.workloads[i]);
        const auto net = dnn::build_model(w.model, w.dataset);
        const auto plan =
            pim::partition_by_params(net, w.paper_params_m, w.paper_params_m / 88.0);
        thermal::PowerParams pcfg;
        pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);
        Pair p;
        p.perf_only = core::optimize_perf_only(net, plan, routes, tcfg, pcfg, rcfg,
                                               acc, perf, moo)
                          .eval;
        p.joint =
            core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc, perf, moo)
                .eval;
        return p;
    });

    util::TextTable t({"DNN", "EDP gain of Floret", "Peak K (Floret)",
                       "Peak K (joint)", "Delta K", "Acc drop (Floret)",
                       "Acc drop (joint)"});
    double edp_gain_sum = 0.0;
    double delta_k_sum = 0.0;
    double worst_acc = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto& w = workload::workload_by_id(spec.workloads[i]);
        const auto& p = pairs[i];
        const double edp_gain = 100.0 * (p.joint.edp - p.perf_only.edp) / p.joint.edp;
        const double dk = p.perf_only.peak_k - p.joint.peak_k;
        edp_gain_sum += edp_gain;
        delta_k_sum += dk;
        worst_acc = std::max(worst_acc, p.perf_only.accuracy_drop);
        t.add_row({w.id + " (" + w.model + ")",
                   util::TextTable::fmt(edp_gain, 1) + "%",
                   util::TextTable::fmt(p.perf_only.peak_k, 1),
                   util::TextTable::fmt(p.joint.peak_k, 1),
                   util::TextTable::fmt(dk, 1),
                   util::TextTable::fmt(100.0 * p.perf_only.accuracy_drop, 1) + "%",
                   util::TextTable::fmt(100.0 * p.joint.accuracy_drop, 1) + "%"});
    }
    t.print(ctx.out);
    const double n = static_cast<double>(pairs.size());
    ctx.out << "\nMeans: Floret EDP advantage "
            << util::TextTable::fmt(edp_gain_sum / n, 1)
            << "% (paper ~9%), peak-T excess "
            << util::TextTable::fmt(delta_k_sum / n, 1)
            << " K (paper ~13 K), worst Floret accuracy drop "
            << util::TextTable::fmt(100.0 * worst_acc, 1) << "% (paper up to 11%).\n";

    JsonReport report("fig6_3d_edp_temp_acc");
    report.add_table("comparison", t);
    report.add_metric("mean_edp_gain_pct", edp_gain_sum / n);
    report.add_metric("mean_peak_excess_k", delta_k_sum / n);
    report.add_metric("worst_accuracy_drop", worst_acc);
    return report;
}

JsonReport fig7_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_moo3d(sv, "fig7");
    if (spec.workloads.empty())
        throw std::invalid_argument("fig7: spec needs workloads");
    const auto& w = workload::workload_by_id(spec.workloads.front());
    ctx.out << "=== Fig. 7: bottom-tier thermal maps, " << w.model << " on "
            << spec.width * spec.height * spec.depth << " PEs ===\n\n";

    const auto var = first_variant(spec);
    const auto topo3d = topo::make_mesh3d(spec.width, spec.height, spec.depth,
                                          1.0, var.tier_pitch_mm);
    const auto routes = noc::RouteTable::build(topo3d, spec.routing);
    thermal::ThermalConfig tcfg;
    tcfg.g_vertical_w_per_k = var.g_vertical_w_per_k;
    thermal::PowerParams pcfg;
    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    const core::MooConfig moo = moo_config_of(spec);

    const auto net = dnn::build_model(w.model, w.dataset);
    const auto plan =
        pim::partition_by_params(net, w.paper_params_m, w.paper_params_m / 88.0);
    pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);

    // The two annealing runs are independent — fan them out.
    auto& engine = ctx.engine;
    const auto results = engine.map(2, [&](std::size_t i) {
        return i == 0 ? core::optimize_perf_only(net, plan, routes, tcfg, pcfg, rcfg,
                                                 acc, perf, moo)
                      : core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc,
                                             perf, moo);
    });

    auto render_for = [&](std::span<const topo::NodeId> order, const char* title) {
        const auto assign = pim::assign_layers(net, plan, order);
        const auto power = thermal::pe_power_map(net, assign, tcfg.cells(), pcfg);
        const auto res = thermal::solve_steady_state(tcfg, power);
        ctx.out << title << "\n"
                << thermal::render_tier(res, 0) << "peak " << res.peak_k()
                << " K, bottom-tier hotspots >340K: " << res.hotspot_count(0, 340.0)
                << "\n\n";
        return res;
    };

    const auto ra =
        render_for(results[0].pe_order, "(a) Floret-based 3D NoC (perf-only)");
    const auto rb = render_for(results[1].pe_order, "(b) Thermal-aware 3D NoC (joint)");

    const double delta = ra.peak_k() - rb.peak_k();
    ctx.out << "Peak delta (a)-(b): " << delta
            << " K   (paper: ~17 K for ResNet34)\n";

    JsonReport report("fig7_thermal_map");
    report.add_metric("peak_k_perf_only", ra.peak_k());
    report.add_metric("peak_k_joint", rb.peak_k());
    report.add_metric("peak_delta_k", delta);
    return report;
}

JsonReport m3d_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_moo3d(sv, "m3d_vs_tsv");
    if (spec.workloads.empty() || spec.variants.empty())
        throw std::invalid_argument("m3d_vs_tsv: spec needs workloads and variants");
    ctx.out << "=== M3D vs TSV 3D integration ("
            << spec.width * spec.height * spec.depth
            << " PEs, joint-optimized) ===\n\n";

    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    const core::MooConfig moo = moo_config_of(spec);

    // workloads x integration variants, each a full joint optimization —
    // independent heavy points for the engine.
    const std::size_t nv = spec.variants.size();
    auto& engine = ctx.engine;
    const auto evals =
        engine.map(spec.workloads.size() * nv, [&](std::size_t i) {
            const auto& w = workload::workload_by_id(spec.workloads[i / nv]);
            const auto& v = spec.variants[i % nv];
            const auto net = dnn::build_model(w.model, w.dataset);
            const auto plan = pim::partition_by_params(net, w.paper_params_m,
                                                       w.paper_params_m / 88.0);
            const auto topo3d = topo::make_mesh3d(spec.width, spec.height,
                                                  spec.depth, 1.0, v.tier_pitch_mm);
            const auto routes = noc::RouteTable::build(topo3d, spec.routing);
            thermal::ThermalConfig tcfg;
            tcfg.g_vertical_w_per_k = v.g_vertical_w_per_k;
            thermal::PowerParams pcfg;
            pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);
            return core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc,
                                        perf, moo)
                .eval;
        });

    util::TextTable t({"DNN", "Variant", "EDP (norm)", "Peak K", "Acc drop"});
    for (std::size_t d = 0; d < spec.workloads.size(); ++d) {
        const auto& w = workload::workload_by_id(spec.workloads[d]);
        const double edp_base = evals[d * nv].edp;  // first variant (TSV)
        for (std::size_t v = 0; v < nv; ++v) {
            const auto& res = evals[d * nv + v];
            t.add_row({w.id + " (" + w.model + ")", spec.variants[v].name,
                       util::TextTable::fmt(res.edp / edp_base),
                       util::TextTable::fmt(res.peak_k, 1),
                       util::TextTable::fmt(100.0 * res.accuracy_drop, 1) + "%"});
        }
    }
    t.print(ctx.out);
    ctx.out << "\nPaper (Section I): M3D's MIVs and thin ILD give better "
               "performance/energy and fewer thermal hotspots than TSV 3D.\n";

    JsonReport report("m3d_vs_tsv");
    report.add_table("comparison", t);
    return report;
}

// ---- hetero / transformer_storage: the Section IV Transformer studies -------

JsonReport hetero_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_transformer(sv, "hetero_transformer");
    if (spec.models.empty() || spec.batches.empty())
        throw std::invalid_argument("hetero_transformer: spec needs models and batches");
    ctx.out << "=== Heterogeneous vs all-PIM Transformer acceleration ===\n\n";

    std::vector<dnn::TransformerConfig> models;
    models.reserve(spec.models.size());
    for (const auto& name : spec.models)
        models.push_back(transformer_model_from_name(name));

    struct Cell {
        bool fits = false;
        std::int32_t reram_chiplets = 0;
        double compute_ns = 0.0;
        double write_ns = 0.0;
        double latency_ns = 0.0;
    };
    // models x {hetero, all-PIM}: independent system evaluations.
    auto& engine = ctx.engine;
    const auto cells = engine.map(models.size() * 2, [&](std::size_t i) {
        auto model = models[i / 2];
        model.batch = spec.batches.front();
        const bool all_pim = (i % 2) == 1;
        const auto sys = core::build_hetero_system(spec.hetero);
        const auto mapping = core::map_transformer(sys, model, spec.hetero, all_pim);
        Cell c;
        c.fits = mapping.fits;
        if (!mapping.fits) return c;
        const auto ev = core::evaluate_hetero(sys, mapping, model);
        c.reram_chiplets = mapping.reram_chiplets_used;
        c.compute_ns = ev.compute_ns;
        c.write_ns = ev.write_ns;
        c.latency_ns = ev.latency_ns;
        return c;
    });

    util::TextTable t({"Model", "System", "ReRAM chiplets", "Compute (us)",
                       "Write stalls (us)", "Latency (us)", "Slowdown"});
    for (std::size_t m = 0; m < models.size(); ++m) {
        const double hetero_latency = cells[m * 2].latency_ns;
        for (const bool all_pim : {false, true}) {
            const auto& c = cells[m * 2 + (all_pim ? 1 : 0)];
            if (!c.fits) {
                t.add_row({models[m].name, all_pim ? "all-PIM" : "heterogeneous",
                           "overflow", "-", "-", "-", "-"});
                continue;
            }
            t.add_row({models[m].name, all_pim ? "all-PIM" : "heterogeneous",
                       std::to_string(c.reram_chiplets),
                       util::TextTable::fmt(c.compute_ns / 1e3, 1),
                       util::TextTable::fmt(c.write_ns / 1e3, 1),
                       util::TextTable::fmt(c.latency_ns / 1e3, 1),
                       util::TextTable::fmt(c.latency_ns /
                                            std::max(1.0, hetero_latency)) +
                           "x"});
        }
    }
    t.print(ctx.out);
    ctx.out << "\nThe all-PIM design pays ReRAM write latency on every score\n"
               "matrix (and would exhaust crossbar endurance in hours); the\n"
               "SFC macro + SRAM modules split avoids it (Section IV).\n";

    JsonReport report("hetero_transformer");
    report.add_table("latency", t);
    return report;
}

JsonReport transformer_storage_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_transformer(sv, "transformer_storage");
    if (spec.models.empty() || spec.batches.empty())
        throw std::invalid_argument(
            "transformer_storage: spec needs models and batches");
    ctx.out << "=== Transformer intermediate-vs-weight storage (Section IV) ===\n\n";

    util::TextTable t({"Model", "Batch", "Weights (M)", "Intermediates (M)",
                       "Ratio"});
    for (const auto& name : spec.models) {
        auto cfg = transformer_model_from_name(name);
        for (const std::int32_t batch : spec.batches) {
            cfg.batch = batch;
            const auto s = dnn::analyze_storage(cfg);
            t.add_row({cfg.name, std::to_string(batch),
                       util::TextTable::fmt(static_cast<double>(s.weight_params) / 1e6, 1),
                       util::TextTable::fmt(static_cast<double>(s.intermediate_elems) / 1e6, 1),
                       util::TextTable::fmt(s.intermediate_over_weights()) + "x"});
        }
    }
    t.print(ctx.out);
    ctx.out << "\nPaper: BERT-Base 8.98x (lands near batch 6 here), BERT-Tiny "
               "2.06x (near batch 2).\n\n";

    ctx.out << "Kernel classes per encoder (heterogeneous mapping input):\n";
    util::TextTable k({"Kernel", "Class", "Weights", "GMACs (batch 1)"});
    const auto walk =
        dnn::kernel_walk(transformer_model_from_name(spec.models.front()));
    for (std::size_t i = 0; i < std::min<std::size_t>(7, walk.size()); ++i) {
        const auto& kn = walk[i];
        const char* cls = kn.cls == dnn::KernelClass::kStaticWeight ? "static (PIM)"
                          : kn.cls == dnn::KernelClass::kDynamicMatrix
                              ? "dynamic (no NVM)"
                              : "elementwise";
        k.add_row({kn.name, cls, std::to_string(kn.weight_params),
                   util::TextTable::fmt(static_cast<double>(kn.work_macs) / 1e9, 2)});
    }
    k.print(ctx.out);

    JsonReport report("transformer_storage");
    report.add_table("storage", t);
    report.add_table("kernels", k);
    return report;
}

// ---- ablation_scaling: system-size, petal-count, and weight-load studies ----

JsonReport ablation_report(const SpecVariant& sv, RunContext& ctx) {
    const auto& spec = as_scaling(sv, "ablation_scaling");
    if (spec.sides.empty() || spec.archs.empty() || spec.lambdas.empty())
        throw std::invalid_argument(
            "ablation_scaling: spec needs sides, archs, and lambdas");
    const auto [lo, hi] =
        std::minmax_element(spec.sides.begin(), spec.sides.end());
    ctx.out << "=== Scaling: ";
    for (std::size_t a = 0; a < spec.archs.size(); ++a)
        ctx.out << (a ? " vs " : "") << experiment::arch_name(spec.archs[a]);
    ctx.out << ", " << *lo * *lo << ".." << *hi * *hi << " chiplets ===\n\n";

    cost::CostParams cp;
    auto& engine = ctx.engine;
    // The mix depends on the grid size (bigger systems run it more
    // concurrently), so the point list is derived, not a cartesian
    // SweepSpec — scaling_points() is the single expansion the report,
    // the result cache, and --list share.
    const auto sweep = engine.run(scaling_points(spec));

    util::TextTable t({"Chiplets", "NoI", "Mean hops", "Makespan (kcyc)",
                       "NoI energy (uJ)", "NoI area (mm2)", "Cost vs ref"});
    for (const auto& row : sweep.rows) {
        const auto fabric = engine.cache().get(row.point.arch, row.point.width,
                                               row.point.height, row.point.swap_seed);
        t.add_row({std::to_string(row.point.width * row.point.height),
                   experiment::arch_name(row.point.arch),
                   util::TextTable::fmt(fabric->routes.mean_hops()),
                   util::TextTable::fmt(row.result.total_cycles / 1e3, 1),
                   util::TextTable::fmt(row.result.total_energy_pj / 1e6, 2),
                   util::TextTable::fmt(cost::noi_area_mm2(fabric->topology, cp), 0),
                   util::TextTable::fmt(cost::fabrication_cost(fabric->topology, cp),
                                        2)});
    }
    t.print(ctx.out);
    ctx.out << "\nSweep: " << sweep.rows.size() << " points on "
            << engine.thread_count() << " thread(s) in "
            << util::TextTable::fmt(sweep.wall_seconds, 2) << " s (fabric cache: "
            << sweep.fabric_cache_hits << " hits / " << sweep.fabric_cache_misses
            << " misses)\n";

    ctx.out << "\n=== Petal-count sweep at 100 chiplets ===\n\n";
    struct PetalRow {
        std::int32_t lambda = 0;
        double d = 0.0;
        std::int32_t links = 0;
        std::uint64_t two_port = 0;
        double mean_hops = 0.0;
        double area = 0.0;
    };
    const auto petals = engine.map(spec.lambdas.size(), [&](std::size_t i) {
        const auto lambda = spec.lambdas[i];
        const auto set = core::generate_sfc_set(10, 10, lambda);
        const auto topo = core::make_floret(set);
        const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
        return PetalRow{lambda, set.tail_head_distance(), topo.link_count(),
                        topo.port_histogram().at(2), routes.mean_hops(),
                        cost::noi_area_mm2(topo, cp)};
    });
    util::TextTable s({"lambda", "d (Eq.1)", "Links", "2-port routers",
                       "Mean route hops", "NoI area (mm2)"});
    for (const auto& p : petals) {
        s.add_row({std::to_string(p.lambda), util::TextTable::fmt(p.d),
                   std::to_string(p.links), std::to_string(p.two_port),
                   util::TextTable::fmt(p.mean_hops),
                   util::TextTable::fmt(p.area, 0)});
    }
    s.print(ctx.out);
    ctx.out << "\nTrade-off: more petals shorten spillover routes (lower mean "
               "hops) but add express links and head/tail router ports.\n";

    ctx.out << "\n=== Weight-loading ablation (WL1 mapped once, 100 chiplets) ===\n\n";
    // Independent evaluations (archs x {off, on}) through the engine.
    const auto wl_cycles = engine.map(spec.archs.size() * 2, [&](std::size_t i) {
        const auto arch = spec.archs[i / 2];
        const bool load = (i % 2) == 1;
        auto b = experiment::build_arch(engine.cache(), arch, 10, 10,
                                        spec.swap_seed, spec.greedy_max_gap);
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(workload::table2().front());
        const auto tasks =
            core::make_tasks(queue, experiment::kParamsPerChipletM, owner);
        const auto mapped = b.mapper->map_queue(tasks, nullptr);
        auto c = spec.eval;
        c.include_weight_load = load;
        return core::evaluate_noi(b.topology(), b.routes(), mapped, c).latency_cycles;
    });
    util::TextTable wload({"NoI", "Inference pass (kcyc)", "+ weight load (kcyc)",
                           "Load overhead"});
    for (std::size_t a = 0; a < spec.archs.size(); ++a) {
        const double off = wl_cycles[a * 2];
        const double on = wl_cycles[a * 2 + 1];
        wload.add_row({experiment::arch_name(spec.archs[a]),
                       util::TextTable::fmt(off / 1e3, 1),
                       util::TextTable::fmt(on / 1e3, 1),
                       util::TextTable::fmt(on / off, 1) + "x"});
    }
    wload.print(ctx.out);
    ctx.out << "\nWeight loading streams every parameter from the I/O corner once "
               "per mapping; it serializes on the I/O port for every NoI alike "
               "and amortizes over the thousands of inference passes served per "
               "mapping — which is why the paper evaluates steady-state "
               "inference traffic.\n";

    JsonReport report("ablation_scaling");
    report.add_table("scaling", t);
    report.add_table("petal_sweep", s);
    report.add_table("weight_load", wload);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    add_point_timing(report, sweep);
    return report;
}

// ---- Builtin registration ---------------------------------------------------

core::SweepSpec table2_sweep_spec() {
    core::SweepSpec spec;
    spec.archs.assign(experiment::kAllArchs.begin(), experiment::kAllArchs.end());
    spec.mixes = workload::table2();
    spec.evals = {experiment::default_eval_config()};
    spec.greedy_max_gap = 2;
    return spec;
}

Moo3dSpec fig6_moo_spec() {
    Moo3dSpec spec;  // defaults carry the Fig. 6 annealing knobs
    spec.workloads = {"DNN1", "DNN2", "DNN3", "DNN4", "DNN5"};
    return spec;
}

ClusterSpec cluster_capacity_spec() {
    ClusterSpec spec;  // base carries default_serve_config()
    spec.base.greedy_max_gap = 2;
    spec.base.replications = 2;
    spec.base.base_seed = 33;
    auto& cfg = spec.base.config;
    // EDF-with-eviction so the overload points exercise preemption: the
    // tight-SLO interactive tenant evicts long-running batch residencies
    // once the fabric saturates.
    cfg.admission = serve::AdmissionPolicy::kEdfEvict;
    cfg.arrivals.max_requests = 60;
    cfg.classes = {
        {"interactive", {"DNN11", "DNN13"}, 0.5, 30'000.0},
        // The batch SLO is the binding one at overload (interactive is
        // rescued by eviction): 200 kcyc puts the unbatched single-fabric
        // knee at the high load while batching pushes it off the chart.
        {"batch", {"DNN1", "DNN8"}, 0.5, 200'000.0},
    };
    spec.cluster_sizes = {1, 2};
    spec.batch_caps = {1, 4};
    spec.loads_per_mcycle = {500.0, 4000.0};
    return spec;
}

Registry make_builtin() {
    Registry reg;
    reg.add({"fig2", "router-port configuration and link structure per NoI",
             [] {
                 auto spec = table2_sweep_spec();
                 spec.mixes.clear();  // structural: fabrics only, no workloads
                 spec.evals.clear();
                 return spec;
             }(),
             fig2_report, /*uses_eval=*/false});
    reg.add({"fig3", "NoI latency of the Table II mixes, normalized to Floret",
             table2_sweep_spec(), fig3_report});
    reg.add({"fig4", "mapped/unmapped chiplets under greedy vs SFC mapping",
             [] {
                 auto spec = table2_sweep_spec();
                 spec.archs = {Arch::kSwap, Arch::kSiamMesh, Arch::kFloret};
                 spec.evals.clear();  // mapping-only: no NoI evaluation
                 return spec;
             }(),
             fig4_report, /*uses_eval=*/false});
    reg.add({"fig5", "NoI energy of the Table II mixes, normalized to Floret",
             table2_sweep_spec(), fig5_report});
    reg.add({"table2", "mix demand accounting + the dynamic makespan sweep",
             table2_sweep_spec(), table2_report});
    reg.add({"serving", "SLA knee per NoI architecture under rising offered load",
             [] {
                 ServeGridSpec spec;  // base carries default_serve_config()
                 spec.base.greedy_max_gap = 2;
                 spec.base.config.arrivals.max_requests = 80;
                 spec.base.replications = 2;
                 spec.base.base_seed = 21;
                 return spec;
             }(),
             serving_report});
    reg.add({"fig6", "perf-only vs joint perf-thermal 3D placement, DNN1-5",
             fig6_moo_spec(), fig6_report, /*uses_eval=*/false});
    reg.add({"fig7", "bottom-tier thermal maps under both 3D mappings",
             [] {
                 auto spec = fig6_moo_spec();
                 spec.workloads = {"DNN2"};  // ResNet34, as in the paper
                 return spec;
             }(),
             fig7_report, /*uses_eval=*/false});
    reg.add({"m3d_vs_tsv", "monolithic-3D vs TSV integration, joint-optimized",
             [] {
                 auto spec = fig6_moo_spec();
                 spec.workloads = {"DNN1", "DNN2", "DNN3"};
                 spec.routing = noc::RoutingPolicy::kXY;
                 spec.iterations = 1200;
                 spec.variants = {{"TSV", 0.30, 0.25},   // micro-bump + bond layer
                                  {"M3D", 0.02, 0.80}};  // nano-MIV through thin ILD
                 return spec;
             }(),
             m3d_report, /*uses_eval=*/false});
    reg.add({"hetero_transformer",
             "heterogeneous ReRAM+SRAM vs all-PIM Transformer latency",
             [] {
                 TransformerSpec spec;  // models/batches default to the study's
                 spec.hetero.macro_width = 10;
                 spec.hetero.macro_height = 10;
                 spec.hetero.lambda = 10;
                 return spec;
             }(),
             hetero_report, /*uses_eval=*/false});
    reg.add({"transformer_storage",
             "attention intermediate-vs-weight storage across batch sizes",
             [] {
                 TransformerSpec spec;
                 spec.models = {"bert_base", "bert_tiny"};
                 spec.batches = {1, 2, 4, 6, 8};
                 return spec;
             }(),
             transformer_storage_report, /*uses_eval=*/false});
    reg.add({"ablation_scaling",
             "system-size scaling, petal-count sweep, weight-load ablation",
             ScalingSpec{}, ablation_report});
    reg.add({"cluster",
             "serving capacity plan: SLA knee vs cluster size x batch cap",
             cluster_capacity_spec(), cluster_report});
    return reg;
}

}  // namespace

const Registry& Registry::builtin() {
    static const Registry reg = make_builtin();
    return reg;
}

ReportFn generic_sweep_report() { return generic_sweep; }
ReportFn serving_grid_report() { return serving_report; }
ReportFn cluster_capacity_report() { return cluster_report; }

// ---- Scenario files ---------------------------------------------------------

Scenario load_scenario_file(const std::string& path, const Registry& registry) {
    std::ifstream f(path);
    if (!f) throw std::runtime_error("cannot read scenario file " + path);
    std::ostringstream buf;
    buf << f.rdbuf();
    util::Json doc;
    try {
        doc = util::json_parse(buf.str());
    } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(path + ": " + e.what());
    }
    if (doc.kind() != util::Json::Kind::kObject)
        throw std::invalid_argument(path + ": scenario file must be an object");
    for (const auto& [key, value] : doc.as_object()) {
        (void)value;
        if (key != "scenario" && key != "name" && key != "kind" && key != "spec")
            throw std::invalid_argument(
                path + ": unknown key \"" + key +
                "\" (expected scenario, name, kind, spec)");
    }

    Scenario out;
    std::string kind;
    if (const util::Json* base_name = doc.find("scenario")) {
        const Scenario& base = registry.at(base_name->as_string());
        out = base;
        kind = spec_kind_name(base.spec);
        if (const util::Json* k = doc.find("kind"))
            if (k->as_string() != kind)
                throw std::invalid_argument(path + ": kind \"" + k->as_string() +
                                            "\" conflicts with scenario \"" +
                                            base.name + "\" (" + kind + ")");
    } else {
        const util::Json* k = doc.find("kind");
        if (!k)
            throw std::invalid_argument(
                path + ": need \"scenario\" (a registered name) or \"kind\"");
        kind = k->as_string();
        out.name = "custom";
        out.summary = "user scenario from " + path;
        if (kind == "serve_grid") {
            out.report = serving_grid_report();
        } else if (kind == "cluster") {
            out.report = cluster_capacity_report();
        } else if (kind == "sweep") {
            out.report = generic_sweep_report();
        } else if (kind == "moo3d" || kind == "transformer" ||
                   kind == "scaling") {
            // These kinds have no generic report — every one is tied to a
            // figure-specific analysis.
            throw std::invalid_argument(
                path + ": bare \"" + kind +
                "\" specs have no generic report; reference a registered "
                "scenario instead ({\"scenario\": \"fig6\", \"spec\": ...})");
        }
        // Any other kind string falls through to spec_from_json below,
        // which rejects it listing the known kinds.
        if (!doc.find("spec"))
            throw std::invalid_argument(path +
                                        ": bare-kind scenarios need a \"spec\"");
    }
    if (const util::Json* name = doc.find("name")) out.name = name->as_string();
    if (const util::Json* spec = doc.find("spec")) {
        try {
            out.spec = spec_from_json(*spec, kind);
        } catch (const std::invalid_argument& e) {
            throw std::invalid_argument(path + ": " + e.what());
        }
    }
    return out;
}

}  // namespace floretsim::scenario
