#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/dnn/model_zoo.h"
#include "src/util/rng.h"

namespace floretsim::workload {

/// One row of the paper's Table I: a DNN inference workload.
/// `paper_params_m` is the *literal* parameter count printed in Table I
/// (several entries disagree with the true architectures; we keep both —
/// see DESIGN.md substitutions).
struct DnnWorkload {
    std::string id;      ///< "DNN1" ... "DNN13".
    std::string model;   ///< Model zoo name, e.g. "ResNet50".
    dnn::Dataset dataset = dnn::Dataset::kImageNet;
    double paper_params_m = 0.0;
};

/// The 13 workloads of Table I.
[[nodiscard]] const std::vector<DnnWorkload>& table1();

/// Lookup by id ("DNN3"); throws std::invalid_argument if unknown.
[[nodiscard]] const DnnWorkload& workload_by_id(const std::string& id);

/// One of Table II's concurrent inference mixes: an ordered queue of
/// (workload id, instance count) entries, executed simultaneously on the
/// 100-chiplet system.
struct ConcurrentMix {
    std::string name;  ///< "WL1" ... "WL5".
    std::vector<std::pair<std::string, std::int32_t>> entries;
    double paper_total_params_b = 0.0;  ///< Table II's printed total.

    /// Total instances across all entries.
    [[nodiscard]] std::int32_t total_instances() const noexcept;
    /// Sum of Table I paper params over all instances (millions).
    [[nodiscard]] double table_params_m() const;

    /// Field-wise equality: lets the scenario layer serialize a mix as a
    /// bare Table II name when it matches the canonical entry exactly.
    [[nodiscard]] bool operator==(const ConcurrentMix&) const = default;
};

/// The five mixes of Table II.
[[nodiscard]] const std::vector<ConcurrentMix>& table2();

/// Expands a mix into the flat task queue (one workload id per instance,
/// in mix order) that the mappers consume.
[[nodiscard]] std::vector<std::string> expand_mix(const ConcurrentMix& mix);

/// Random mix generator for sweeps/property tests: `tasks` instances drawn
/// uniformly from Table I.
[[nodiscard]] ConcurrentMix random_mix(util::Rng& rng, std::int32_t tasks,
                                       const std::string& name = "RND");

}  // namespace floretsim::workload
