#include "src/workload/tables.h"

#include <stdexcept>

namespace floretsim::workload {

const std::vector<DnnWorkload>& table1() {
    static const std::vector<DnnWorkload> kTable = {
        {"DNN1", "ResNet18", dnn::Dataset::kImageNet, 24.76},
        {"DNN2", "ResNet34", dnn::Dataset::kImageNet, 36.5},
        {"DNN3", "ResNet50", dnn::Dataset::kImageNet, 25.94},
        {"DNN4", "ResNet101", dnn::Dataset::kImageNet, 9.42},
        {"DNN5", "ResNet110", dnn::Dataset::kImageNet, 43.6},
        {"DNN6", "ResNet152", dnn::Dataset::kImageNet, 54.84},
        {"DNN7", "VGG19", dnn::Dataset::kImageNet, 93.4},
        {"DNN8", "DenseNet169", dnn::Dataset::kImageNet, 54.84},
        {"DNN9", "ResNet18", dnn::Dataset::kCifar10, 11.22},
        {"DNN10", "ResNet34", dnn::Dataset::kCifar10, 21.34},
        {"DNN11", "VGG11", dnn::Dataset::kCifar10, 9.62},
        {"DNN12", "VGG19", dnn::Dataset::kCifar10, 20.42},
        {"DNN13", "GoogLeNet", dnn::Dataset::kCifar10, 6.16},
    };
    return kTable;
}

const DnnWorkload& workload_by_id(const std::string& id) {
    for (const auto& w : table1())
        if (w.id == id) return w;
    throw std::invalid_argument("unknown workload id: " + id);
}

std::int32_t ConcurrentMix::total_instances() const noexcept {
    std::int32_t total = 0;
    for (const auto& [id, count] : entries) total += count;
    return total;
}

double ConcurrentMix::table_params_m() const {
    double total = 0.0;
    for (const auto& [id, count] : entries)
        total += workload_by_id(id).paper_params_m * count;
    return total;
}

const std::vector<ConcurrentMix>& table2() {
    // Table II of the paper: ordered queues of concurrent DNN tasks for the
    // 100-chiplet system (dataset = ImageNet).
    static const std::vector<ConcurrentMix> kTable = {
        {"WL1",
         {{"DNN1", 16}, {"DNN2", 1}, {"DNN3", 3}, {"DNN4", 4}, {"DNN5", 2}, {"DNN6", 1},
          {"DNN7", 1}},
         1.1},
        {"WL2",
         {{"DNN3", 2}, {"DNN8", 1}, {"DNN4", 7}, {"DNN7", 4}, {"DNN8", 2}, {"DNN1", 1},
          {"DNN5", 1}},
         1.4},
        {"WL3",
         {{"DNN1", 12}, {"DNN2", 9}, {"DNN4", 3}, {"DNN5", 10}, {"DNN1", 12}, {"DNN7", 5},
          {"DNN8", 1}},
         8.8},
        {"WL4",
         {{"DNN6", 1}, {"DNN2", 3}, {"DNN3", 5}, {"DNN6", 4}, {"DNN1", 3}, {"DNN7", 4},
          {"DNN8", 2}},
         3.8},
        {"WL5",
         {{"DNN3", 1}, {"DNN8", 3}, {"DNN7", 4}, {"DNN2", 6}, {"DNN3", 4}, {"DNN7", 3},
          {"DNN8", 2}},
         1.8},
    };
    return kTable;
}

std::vector<std::string> expand_mix(const ConcurrentMix& mix) {
    std::vector<std::string> queue;
    for (const auto& [id, count] : mix.entries)
        for (std::int32_t i = 0; i < count; ++i) queue.push_back(id);
    return queue;
}

ConcurrentMix random_mix(util::Rng& rng, std::int32_t tasks, const std::string& name) {
    ConcurrentMix mix;
    mix.name = name;
    const auto& t1 = table1();
    for (std::int32_t i = 0; i < tasks; ++i) {
        const auto& w = t1[rng.below(t1.size())];
        if (!mix.entries.empty() && mix.entries.back().first == w.id)
            ++mix.entries.back().second;
        else
            mix.entries.emplace_back(w.id, 1);
    }
    return mix;
}

}  // namespace floretsim::workload
