#!/usr/bin/env bash
# Golden-schema check for floretsim_run merged reports (run by ctest as
# `report_schema`): run one scenario with a --set override, then pin the
# exact key set of the document — driver block, scenario block, table
# columns, metric names — and require every metric to be a finite number.
# A report regression (renamed metric, dropped table, NaN leaking into
# the document) fails loudly here instead of silently breaking whatever
# parses these reports downstream.
#
#   usage: scripts/report_schema.sh <floretsim_run>
set -eu

driver=$1

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

"$driver" --only fig3 --set traffic_scale=1/128 --threads 2 \
    --json "$out_dir/fig3.json" --metrics-out "$out_dir/metrics.json" \
    > "$out_dir/fig3.log"

python3 - "$out_dir/fig3.json" "$out_dir/metrics.json" <<'EOF'
import json, math, sys

doc = json.load(open(sys.argv[1]))

assert set(doc) == {"driver", "scenarios"}, f"top-level keys: {set(doc)}"

DRIVER_KEYS = {"run_info", "threads", "shards", "pool", "sim_core",
               "scenarios_run", "scenarios_failed", "wall_seconds",
               "fabric_cache_hits", "fabric_cache_misses",
               "result_cache_hits", "result_cache_misses"}
assert set(doc["driver"]) == DRIVER_KEYS, (
    f"driver keys: {sorted(set(doc['driver']) ^ DRIVER_KEYS)} changed")
assert doc["driver"]["scenarios_run"] == 1
assert doc["driver"]["scenarios_failed"] == 0
# No --cache-dir given: the result-cache counters must exist and be zero.
assert doc["driver"]["result_cache_hits"] == 0
assert doc["driver"]["result_cache_misses"] == 0
assert doc["driver"]["sim_core"] in {"reference", "event-horizon", "regional"}
# No --pool given: fleet off, and the executor is the local thread pool.
assert doc["driver"]["pool"] == 0
assert "fleet" not in doc["driver"], "fleet block present without --pool"

DRIVER_RUN_INFO_KEYS = {"build_type", "compiler", "git_sha", "sim_core",
                        "threads", "shards", "seed", "executor"}
driver_info = doc["driver"]["run_info"]
assert set(driver_info) == DRIVER_RUN_INFO_KEYS, (
    f"driver run_info keys: {sorted(set(driver_info) ^ DRIVER_RUN_INFO_KEYS)}")
for key in ("build_type", "compiler", "git_sha"):
    assert isinstance(driver_info[key], str) and driver_info[key], (
        f"run_info.{key} must be a non-empty string")
assert driver_info["seed"] is None, "no --seed given: seed must be null"
assert driver_info["executor"] == "in-process", driver_info["executor"]

assert set(doc["scenarios"]) == {"fig3"}
fig3 = doc["scenarios"]["fig3"]
assert set(fig3) == {"bench", "sim_core", "run_info", "metrics", "tables"}, (
    f"fig3 keys: {set(fig3)}")
assert fig3["bench"] == "fig3_latency"
assert fig3["sim_core"] in {"reference", "event-horizon", "regional"}

SCENARIO_RUN_INFO_KEYS = {"build_type", "compiler", "git_sha", "sim_core",
                          "seed", "threads"}
assert set(fig3["run_info"]) == SCENARIO_RUN_INFO_KEYS, (
    f"fig3 run_info keys: "
    f"{sorted(set(fig3['run_info']) ^ SCENARIO_RUN_INFO_KEYS)}")
assert isinstance(fig3["run_info"]["seed"], int), "scenario seed is effective"

METRIC_KEYS = {"sweep_wall_seconds", "sweep_threads",
               "point_seconds_min", "point_seconds_mean", "point_seconds_max",
               "point_imbalance", "worst_ratio",
               "scenario_seconds", "fabric_cache_hits", "fabric_cache_misses"}
assert set(fig3["metrics"]) == METRIC_KEYS, (
    f"fig3 metric keys changed: {sorted(set(fig3['metrics']) ^ METRIC_KEYS)}")
for key, value in fig3["metrics"].items():
    assert isinstance(value, (int, float)) and math.isfinite(value), (
        f"metric {key} is not a finite number: {value!r}")
assert fig3["metrics"]["worst_ratio"] >= 1.0, "ratios normalize to Floret"

assert set(fig3["tables"]) == {"latency_normalized"}
table = fig3["tables"]["latency_normalized"]
assert set(table) == {"columns", "rows"}
cols = table["columns"]
assert cols[0] == "Mix" and len(cols) == 6, f"columns: {cols}"
assert len(table["rows"]) == 5, "one row per Table II mix"
for row in table["rows"]:
    assert len(row) == len(cols)
    assert all(isinstance(c, str) and c for c in row), f"bad cells: {row}"

# The --metrics-out snapshot: top-level shape and the core hot-path
# counters every instrumented run of fig3 must produce.
metrics = json.load(open(sys.argv[2]))
assert set(metrics) == {"counters", "gauges", "histograms"}, (
    f"metrics snapshot keys: {set(metrics)}")
CORE_COUNTERS = {"sweep.points", "arch_cache.misses", "noi.evals",
                 "sim.runs", "sim.cycles", "mix.runs"}
missing = CORE_COUNTERS - set(metrics["counters"])
assert not missing, f"metrics counters missing: {sorted(missing)}"
for key, value in metrics["counters"].items():
    assert isinstance(value, int) and value >= 0, f"counter {key}: {value!r}"

print("report schema ok: driver/scenario/run_info/table/metric key sets",
      f"pinned, {len(METRIC_KEYS)} metrics finite, metrics snapshot shape ok")
EOF

# Second document: the scenarios migrated into the registry from the
# bespoke bench mains. Pin each one's bench name, metric key set, and
# table columns so the declarative ports can't silently drop a table or
# rename a metric relative to the original benches.
"$driver" --only fig2,fig6,fig7,m3d_vs_tsv,hetero_transformer \
    --only transformer_storage,ablation_scaling \
    --set iterations=40 --set traffic_scale=1/128 \
    --threads 2 --json "$out_dir/migrated.json" > "$out_dir/migrated.log"

python3 - "$out_dir/migrated.json" <<'EOF'
import json, math, sys

doc = json.load(open(sys.argv[1]))
assert doc["driver"]["scenarios_failed"] == 0

# Every scenario gets these from the driver wrapper, on top of what its
# report emits.
WRAPPER = {"scenario_seconds", "fabric_cache_hits", "fabric_cache_misses"}
SWEEP_TIMING = {"sweep_wall_seconds", "point_seconds_min",
                "point_seconds_mean", "point_seconds_max", "point_imbalance"}

GOLDEN = {
    "fig2": {
        "bench": "fig2_ports_links",
        "metrics": WRAPPER,
        "tables": {
            "ports": ["Ports", "Kite", "SIAM", "SWAP", "Floret"],
            "links": ["NoI", "Total links", "1-hop", "2-hop", ">=3-hop",
                      "Mean length (mm)"],
        },
    },
    "fig6": {
        "bench": "fig6_3d_edp_temp_acc",
        "metrics": WRAPPER | {"mean_edp_gain_pct", "mean_peak_excess_k",
                              "worst_accuracy_drop"},
        "tables": {
            "comparison": ["DNN", "EDP gain of Floret", "Peak K (Floret)",
                           "Peak K (joint)", "Delta K", "Acc drop (Floret)",
                           "Acc drop (joint)"],
        },
    },
    "fig7": {
        "bench": "fig7_thermal_map",
        "metrics": WRAPPER | {"peak_k_perf_only", "peak_k_joint",
                              "peak_delta_k"},
        "tables": {},
    },
    "m3d_vs_tsv": {
        "bench": "m3d_vs_tsv",
        "metrics": WRAPPER,
        "tables": {
            "comparison": ["DNN", "Variant", "EDP (norm)", "Peak K",
                           "Acc drop"],
        },
    },
    "hetero_transformer": {
        "bench": "hetero_transformer",
        "metrics": WRAPPER,
        "tables": {
            "latency": ["Model", "System", "ReRAM chiplets", "Compute (us)",
                        "Write stalls (us)", "Latency (us)", "Slowdown"],
        },
    },
    "transformer_storage": {
        "bench": "transformer_storage",
        "metrics": WRAPPER,
        "tables": {
            "storage": ["Model", "Batch", "Weights (M)", "Intermediates (M)",
                        "Ratio"],
            "kernels": ["Kernel", "Class", "Weights", "GMACs (batch 1)"],
        },
    },
    "ablation_scaling": {
        "bench": "ablation_scaling",
        "metrics": WRAPPER | SWEEP_TIMING,
        "tables": {
            "scaling": ["Chiplets", "NoI", "Mean hops", "Makespan (kcyc)",
                        "NoI energy (uJ)", "NoI area (mm2)", "Cost vs ref"],
            "petal_sweep": ["lambda", "d (Eq.1)", "Links", "2-port routers",
                            "Mean route hops", "NoI area (mm2)"],
            "weight_load": ["NoI", "Inference pass (kcyc)",
                            "+ weight load (kcyc)", "Load overhead"],
        },
    },
}

assert set(doc["scenarios"]) == set(GOLDEN), (
    f"scenario set: {sorted(set(doc['scenarios']) ^ set(GOLDEN))}")
for name, want in GOLDEN.items():
    got = doc["scenarios"][name]
    assert got["bench"] == want["bench"], (
        f"{name}: bench {got['bench']!r} != {want['bench']!r}")
    assert set(got["metrics"]) == want["metrics"], (
        f"{name} metric keys changed: "
        f"{sorted(set(got['metrics']) ^ want['metrics'])}")
    for key, value in got["metrics"].items():
        assert isinstance(value, (int, float)) and math.isfinite(value), (
            f"{name} metric {key} is not a finite number: {value!r}")
    assert set(got["tables"]) == set(want["tables"]), (
        f"{name} tables changed: "
        f"{sorted(set(got['tables']) ^ set(want['tables']))}")
    for tname, cols in want["tables"].items():
        table = got["tables"][tname]
        assert table["columns"] == cols, (
            f"{name}.{tname} columns: {table['columns']}")
        assert table["rows"], f"{name}.{tname} has no rows"
        for row in table["rows"]:
            assert len(row) == len(cols), f"{name}.{tname} ragged row: {row}"
            assert all(isinstance(c, str) and c for c in row), (
                f"{name}.{tname} bad cells: {row}")

print(f"report schema ok: {len(GOLDEN)} migrated scenarios pinned "
      "(bench names, metric keys, table columns)")
EOF

# Third document: the serving-cluster capacity plan. Its metric keys are
# derived from the spec's K x batch x load grid, so the pin reconstructs
# the expected set from the registered lists and requires the serving
# totals (preemptions, evictions, batching, affinity) on top.
"$driver" --only cluster --set max_requests=24 --set replications=1 \
    --threads 2 --json "$out_dir/cluster.json" > "$out_dir/cluster.log"

python3 - "$out_dir/cluster.json" <<'EOF'
import json, math, sys

doc = json.load(open(sys.argv[1]))
assert doc["driver"]["scenarios_failed"] == 0
cluster = doc["scenarios"]["cluster"]
assert cluster["bench"] == "cluster_capacity", cluster["bench"]

assert set(cluster["tables"]) == {"capacity"}
table = cluster["tables"]["capacity"]
COLS = ["K", "Batch", "Load (req/Mcyc)", "Delivered", "p99 (kcyc)",
        "Util", "SLA viol", "Batched", "Preempt", "Evict"]
assert table["columns"] == COLS, f"capacity columns: {table['columns']}"

SIZES, CAPS, LOADS = [1, 2], [1, 4], [500, 4000]  # the registered grid
assert len(table["rows"]) == len(SIZES) * len(CAPS) * len(LOADS), (
    f"capacity rows: {len(table['rows'])}")
for row in table["rows"]:
    assert len(row) == len(COLS), f"ragged row: {row}"
    assert all(isinstance(c, str) and c for c in row), f"bad cells: {row}"

want = {"scenario_seconds", "fabric_cache_hits", "fabric_cache_misses",
        "point_seconds_min", "point_seconds_mean", "point_seconds_max",
        "point_imbalance", "noi_rounds", "noi_cache_hits",
        "serve_preemptions", "serve_evictions", "serve_batched_requests",
        "serve_affinity_hits"}
for k in SIZES:
    for b in CAPS:
        want.add(f"k{k}_b{b}_knee_load")
        for load in LOADS:
            for suffix in ("p99_kcyc", "sla_violation_rate",
                           "throughput_per_mcyc", "batched", "preemptions"):
                want.add(f"k{k}_b{b}_load{load}_{suffix}")
assert set(cluster["metrics"]) == want, (
    f"cluster metric keys changed: {sorted(set(cluster['metrics']) ^ want)}")
for key, value in cluster["metrics"].items():
    assert isinstance(value, (int, float)) and math.isfinite(value), (
        f"cluster metric {key} is not a finite number: {value!r}")
# The capacity plan only means something if the serving features ran.
assert cluster["metrics"]["serve_preemptions"] > 0, cluster["metrics"]
assert cluster["metrics"]["serve_batched_requests"] > 0, cluster["metrics"]

print("report schema ok: cluster capacity plan pinned "
      f"({len(want)} metric keys, {len(COLS)} capacity columns)")
EOF
