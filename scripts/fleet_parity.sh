#!/usr/bin/env bash
# Persistent-fleet differential (run by ctest as `fleet_parity`, and by
# CI on both simulator cores via FLORETSIM_SIM_CORE):
#
#   the full registry's merged report must be bit-identical whether the
#   sweeps run in 1 process, across --shards 4 (PR 5 one-shot workers),
#   or on a --pool 4 persistent fleet — and it must STAY bit-identical
#   when one fleet worker is SIGKILLed mid-run (the coordinator restarts
#   it and reassigns its un-acked lease). Only wall-clock-derived
#   metrics (point timings, cache counters, thread/shard counts) may
#   differ; every table cell and derived metric must match byte for byte.
#
# A second, smaller pass pins the whole point of a *persistent* fleet:
# two scenarios sharing an arch grid, run on a warm pool with stealing
# disabled, must build every fabric during the first scenario and none
# during the second (per-scenario fleet fabric_misses == 0).
#
#   usage: scripts/fleet_parity.sh <floretsim_run> [extra driver args...]
#
# Extra arguments (e.g. --core regional) are passed through to every
# driver invocation, so the parity contract can be pinned per simulator
# core.
set -eu

driver=$1
shift

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

common="--set grid=8x8 --set traffic_scale=1/128 \
        --set max_requests=16 --set replications=1 --set iterations=40"

# shellcheck disable=SC2086
"$driver" $common --threads 2            "$@" --json "$out_dir/p1.json" \
    > "$out_dir/p1.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --shards 4 "$@" --json "$out_dir/s4.json" \
    > "$out_dir/s4.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --pool 4   "$@" --json "$out_dir/f4.json" \
    > "$out_dir/f4.log" 2> "$out_dir/f4.err"
# Same fleet run, but worker 1's first incarnation SIGKILLs itself after
# its 3rd row: the report must not change at all.
# shellcheck disable=SC2086
FLORETSIM_FLEET_KILL="1:0:3" \
    "$driver" $common --threads 1 --pool 4 "$@" --json "$out_dir/f4k.json" \
    > "$out_dir/f4k.log" 2> "$out_dir/f4k.err"

# Warm-affinity pass: fig3 and fig5 share the 6x6 arch grid. Stealing is
# disabled (huge threshold) so fabric groups never migrate off the worker
# that owns them — the second scenario must be a pure cache hit fleetwide.
# shellcheck disable=SC2086
FLORETSIM_FLEET_STEAL_AFTER=1000000000 \
    "$driver" --only fig3,fig5 --set grid=6x6 --set traffic_scale=1/512 \
    --threads 1 --pool 2 "$@" --json "$out_dir/warm.json" \
    > "$out_dir/warm.log" 2> "$out_dir/warm.err"

python3 - "$out_dir/p1.json" "$out_dir/s4.json" "$out_dir/f4.json" \
    "$out_dir/f4k.json" "$out_dir/warm.json" <<'EOF'
import json, sys

p1_path, s4_path, f4_path, f4k_path, warm_path = sys.argv[1:6]
docs = {path: json.load(open(path)) for path in sys.argv[1:5]}

# Volatile-by-construction keys: wall-clock timings, the load-imbalance
# ratio derived from them, cache counters (distributed sweeps run on
# worker caches, not the coordinator's), and the topology knobs.
VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items()
                if not any(t in k for t in VOLATILE)}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

for path, doc in docs.items():
    assert doc["driver"]["scenarios_failed"] == 0, (
        f"{path}: {doc['driver']['scenarios_failed']} scenario(s) failed")
    assert set(doc["scenarios"]) == set(docs[p1_path]["scenarios"]), (
        f"{path}: scenario set differs")

base = strip(docs[p1_path]["scenarios"])
for path, doc in docs.items():
    got = strip(doc["scenarios"])
    for name in base:
        assert got[name] == base[name], (
            f"{path}: scenario {name} differs from the 1-process run:\n"
            f"  base: {json.dumps(base[name])[:400]}\n"
            f"  got:  {json.dumps(got[name])[:400]}")

# The fleet runs really ran on the fleet.
for path in (f4_path, f4k_path):
    doc = docs[path]
    assert doc["driver"]["run_info"]["executor"] == "fleet", path
    fleet = doc["driver"]["fleet"]
    assert fleet["workers"] == 4, fleet
    assert fleet["rows"] > 0, f"{path}: fleet acked no rows"
    assert fleet["points"] == fleet["rows"], fleet

# Clean fleet run: nobody died, nothing was reassigned.
clean = docs[f4_path]["driver"]["fleet"]
assert clean["worker_deaths"] == 0, clean
assert clean["worker_restarts"] == 0, clean

# Kill run: the injected death happened AND was recovered from.
killed = docs[f4k_path]["driver"]["fleet"]
assert killed["worker_deaths"] >= 1, (
    "FLORETSIM_FLEET_KILL did not fire: " + json.dumps(killed))
assert killed["worker_restarts"] >= 1, json.dumps(killed)

# Warm-affinity pass: every fabric is built during fig3 (which runs
# first), none during fig5 — the persistent ArchCaches plus lease
# affinity make the second scenario a pure fleetwide cache hit.
warm = json.load(open(warm_path))
assert warm["driver"]["scenarios_failed"] == 0
per = warm["driver"]["fleet"]["per_scenario"]
assert per["fig3"]["fabric_misses"] > 0, json.dumps(per)
assert per["fig5"]["fabric_misses"] == 0, (
    "warm fleet rebuilt fabrics for fig5: " + json.dumps(per))
assert per["fig5"]["fabric_hits"] > 0, json.dumps(per)

names = ", ".join(sorted(base))
print(f"fleet parity ok: {names} bit-identical across 1 process, "
      "--shards 4, --pool 4, and --pool 4 with an injected worker kill; "
      "warm pool re-ran fig5 with zero fabric misses")
EOF
