#!/usr/bin/env bash
# Result-cache differential (run by ctest as `cache_parity`, and by CI):
#
#   1. Cold/warm/sharded-warm parity: the full registry run three times
#      against one --cache-dir — cold (every sweep point evaluated and
#      stored), warm (every point served from the cache), and warm under
#      --shards 2 (the coordinator partitions the hits out BEFORE
#      dispatch, so no worker is ever forked) — must produce bit-identical
#      merged reports once wall-clock-derived keys are stripped.
#   2. Zero warm evaluations: the warm run's --metrics-out snapshot must
#      show result_cache.hits > 0, result_cache.misses == 0, and NO
#      sweep.points evaluations at all — rows came from disk, not
#      recompute.
#   3. Warm is faster: a second cache dir, cold then warm on the fig3
#      sweep alone; the warm wall time must beat the cold one (the sweep
#      does no simulation on the warm pass).
#   4. Partial warm under shards: prime only fig3's floret+kite points,
#      then run the full fig3 arch set with --shards 2 — the merged
#      report must equal an uncached reference run even though half the
#      rows came from the cache and half from worker processes (pins the
#      hit/miss interleave order through the sharded merge).
#
#   usage: scripts/cache_parity.sh <floretsim_run> [extra driver args...]
set -eu

driver=$1
shift

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

common="--set grid=8x8 --set traffic_scale=1/128 \
        --set max_requests=16 --set replications=1 --set iterations=40"
cache_a="$out_dir/cache_a"

# shellcheck disable=SC2086
"$driver" $common --threads 2 --cache-dir "$cache_a" "$@" \
    --json "$out_dir/cold.json" > "$out_dir/cold.log"
# shellcheck disable=SC2086
"$driver" $common --threads 2 --cache-dir "$cache_a" "$@" \
    --json "$out_dir/warm.json" --metrics-out "$out_dir/warm.metrics.json" \
    > "$out_dir/warm.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --shards 2 --cache-dir "$cache_a" "$@" \
    --json "$out_dir/warm_s2.json" > "$out_dir/warm_s2.log"

python3 - "$out_dir/cold.json" "$out_dir/warm.json" "$out_dir/warm_s2.json" \
    "$out_dir/warm.metrics.json" <<'EOF'
import json, sys

cold, warm, warm_s2 = (json.load(open(p)) for p in sys.argv[1:4])
metrics = json.load(open(sys.argv[4]))

# Same volatile-key strip as shard_parity: wall-clock timings, imbalance,
# cache counters, thread/shard counts are allowed to differ; nothing else.
VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items()
                if not any(t in k for t in VOLATILE)}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

for name, doc in (("cold", cold), ("warm", warm), ("warm_s2", warm_s2)):
    assert doc["driver"]["scenarios_failed"] == 0, f"{name}: scenario failed"

base = strip(cold["scenarios"])
for name, doc in (("warm", warm), ("warm_s2", warm_s2)):
    got = strip(doc["scenarios"])
    for scen in base:
        assert got[scen] == base[scen], (
            f"{name}: scenario {scen} differs from the cold run:\n"
            f"  cold: {json.dumps(base[scen])[:400]}\n"
            f"  got:  {json.dumps(got[scen])[:400]}")

# The cold run stored, the warm runs only hit.
assert cold["driver"]["result_cache_misses"] > 0, "cold run missed nothing?"
for name, doc in (("warm", warm), ("warm_s2", warm_s2)):
    d = doc["driver"]
    assert d["result_cache_hits"] > 0, f"{name}: no cache hits"
    assert d["result_cache_misses"] == 0, (
        f"{name}: {d['result_cache_misses']} misses on a fully warm cache")
# Probe count is deterministic, and fig3/fig5/table2 share point keys, so
# the cold run already hits on the repeats: warm hits == all cold probes.
assert warm["driver"]["result_cache_hits"] == \
    cold["driver"]["result_cache_hits"] + \
    cold["driver"]["result_cache_misses"], (
    "warm hit count != cold probe count")

# Zero point evaluations on the warm pass: the sweep.points counter is
# incremented only by evaluate_point, which a fully warm run never calls.
counters = metrics["counters"]
assert counters.get("sweep.points", 0) == 0, (
    f"warm run evaluated {counters['sweep.points']} points")
assert counters.get("result_cache.hits", 0) > 0
assert counters.get("result_cache.misses", 0) == 0

print("cache parity ok: cold/warm/--shards 2 warm bit-identical, "
      f"{warm['driver']['result_cache_hits']} hits, 0 warm evaluations")
EOF

# Warm must be faster than cold on a sweep-only scenario (fig3 at its
# default size: the warm pass runs no simulation at all, so this holds by
# a wide margin — not a tight perf bound that could flake).
cache_b="$out_dir/cache_b"
# shellcheck disable=SC2086
"$driver" --only fig3 --threads 2 --cache-dir "$cache_b" "$@" \
    --json "$out_dir/fig3_cold.json" > "$out_dir/fig3_cold.log"
# shellcheck disable=SC2086
"$driver" --only fig3 --threads 2 --cache-dir "$cache_b" "$@" \
    --json "$out_dir/fig3_warm.json" > "$out_dir/fig3_warm.log"

# Partial warm under shards: prime two of fig3's four archs in a fresh
# cache, then run the full arch set sharded against it, and compare to an
# uncached reference.
cache_c="$out_dir/cache_c"
# shellcheck disable=SC2086
"$driver" --only fig3 --set archs=floret,kite --threads 2 \
    --cache-dir "$cache_c" "$@" --json "$out_dir/prime.json" \
    > "$out_dir/prime.log"
# shellcheck disable=SC2086
"$driver" --only fig3 --threads 1 --shards 2 --cache-dir "$cache_c" "$@" \
    --json "$out_dir/partial.json" > "$out_dir/partial.log"
# shellcheck disable=SC2086
"$driver" --only fig3 --threads 2 "$@" --json "$out_dir/ref.json" \
    > "$out_dir/ref.log"

python3 - "$out_dir/fig3_cold.json" "$out_dir/fig3_warm.json" \
    "$out_dir/partial.json" "$out_dir/ref.json" <<'EOF'
import json, sys

f3_cold, f3_warm, partial, ref = (json.load(open(p)) for p in sys.argv[1:5])

cold_wall = f3_cold["driver"]["wall_seconds"]
warm_wall = f3_warm["driver"]["wall_seconds"]
assert f3_warm["driver"]["result_cache_hits"] > 0
assert f3_warm["driver"]["result_cache_misses"] == 0
assert warm_wall < cold_wall, (
    f"warm fig3 ({warm_wall:.3f}s) not faster than cold ({cold_wall:.3f}s)")

VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items()
                if not any(t in k for t in VOLATILE)}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

d = partial["driver"]
assert d["result_cache_hits"] > 0, "partial run hit nothing"
assert d["result_cache_misses"] > 0, "partial run missed nothing"
assert strip(partial["scenarios"]) == strip(ref["scenarios"]), (
    "partially-warm sharded fig3 differs from the uncached reference run")

print(f"cache timing ok: warm {warm_wall:.3f}s < cold {cold_wall:.3f}s; "
      f"partial-warm sharded merge ({d['result_cache_hits']} hits + "
      f"{d['result_cache_misses']} misses) matches the uncached reference")
EOF
