#!/usr/bin/env bash
# Serving-cluster differential (run by ctest as `serve_parity`, and by CI
# on both simulator cores via FLORETSIM_SIM_CORE):
#
#   the `cluster` capacity-planning scenario must be bit-identical whether
#   the driver runs in 1 process, across --shards 2 one-shot workers, or
#   on a --pool 2 persistent fleet. The serving replications are a
#   discrete-event simulation fanned out on the shared SweepEngine, so
#   every K x batch x load cell — latency percentiles, knee loads,
#   preemption/eviction/batching totals — must match byte for byte; only
#   wall-clock-derived metrics may differ.
#
#   usage: scripts/serve_parity.sh <floretsim_run> [extra driver args...]
#
# Extra arguments (e.g. --core regional) are passed through to every
# driver invocation, so the parity contract can be pinned per simulator
# core.
set -eu

driver=$1
shift

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

common="--only cluster --set max_requests=24 --set replications=2"

# shellcheck disable=SC2086
"$driver" $common --threads 2            "$@" --json "$out_dir/p1.json" \
    > "$out_dir/p1.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --shards 2 "$@" --json "$out_dir/s2.json" \
    > "$out_dir/s2.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --pool 2   "$@" --json "$out_dir/f2.json" \
    > "$out_dir/f2.log" 2> "$out_dir/f2.err"

python3 - "$out_dir/p1.json" "$out_dir/s2.json" "$out_dir/f2.json" <<'EOF'
import json, sys

p1_path, s2_path, f2_path = sys.argv[1:4]
docs = {path: json.load(open(path)) for path in sys.argv[1:4]}

# Volatile-by-construction keys: wall-clock timings, the load-imbalance
# ratio derived from them, cache counters, and the topology knobs.
VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items()
                if not any(t in k for t in VOLATILE)}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

for path, doc in docs.items():
    assert doc["driver"]["scenarios_failed"] == 0, (
        f"{path}: {doc['driver']['scenarios_failed']} scenario(s) failed")
    assert set(doc["scenarios"]) == {"cluster"}, (
        f"{path}: expected exactly the cluster scenario")

base = strip(docs[p1_path]["scenarios"]["cluster"])
for path, doc in docs.items():
    got = strip(doc["scenarios"]["cluster"])
    assert got == base, (
        f"{path}: cluster scenario differs from the 1-process run:\n"
        f"  base: {json.dumps(base)[:400]}\n"
        f"  got:  {json.dumps(got)[:400]}")

# The run exercised the serving features the scenario exists to plan for.
metrics = docs[p1_path]["scenarios"]["cluster"]["metrics"]
assert metrics["serve_preemptions"] > 0, metrics
assert metrics["serve_batched_requests"] > 0, metrics
assert any(k.endswith("_knee_load") for k in metrics), metrics

print("serve parity ok: cluster capacity plan bit-identical across "
      "1 process, --shards 2, and --pool 2 "
      f"(preemptions={metrics['serve_preemptions']}, "
      f"batched={metrics['serve_batched_requests']})")
EOF
