#!/usr/bin/env bash
# Bench smoke: exercise every bench code path on a tiny configuration and
# fail on a non-zero exit or an unparseable JSON report. Catches bit-rot
# in rarely-run benches (and the JSON emitter) without paying for
# full-size sweeps in CI.
#
# All three simulator cores are exercised end to end (the event-horizon
# default, the reference cycle loop, and the per-region-clock regional
# core — via FLORETSIM_SIM_CORE for the bench binaries and the --core
# flag for the driver, so the flag path itself is smoke-tested). The
# figure benches that live in the scenario registry (all thirteen:
# fig2-7, table2, serving, cluster, m3d_vs_tsv, hetero_transformer,
# transformer_storage, ablation_scaling) are covered by ONE floretsim_run
# invocation per core:
# one process, one shared SweepEngine/fabric cache, so the registered
# scenarios cost one sweep's worth of fabric builds instead of five
# processes' — and the driver's own CLI (--set overrides, merged report)
# is smoke-tested for free. The remaining bench binaries keep their
# per-binary loop, also once per core.
#
#   usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -u

build_dir=${1:-build}
if [ ! -d "$build_dir" ]; then
    echo "bench_smoke: build dir '$build_dir' not found" >&2
    exit 2
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

fail=0
ran=0

driver="$build_dir/floretsim_run"
if [ ! -x "$driver" ]; then
    echo "bench_smoke: $driver not found" >&2
    exit 2
fi

# Figure benches covered by the driver (thin registry mains — running the
# binary would repeat the identical scenario code the driver just ran).
registered="bench_fig3_latency bench_fig4_utilization bench_fig5_energy \
bench_table2_mixes bench_serving_sla bench_fig2_ports_links \
bench_fig6_3d_edp_temp_acc bench_fig7_thermal_map bench_m3d_vs_tsv \
bench_hetero_transformer bench_transformer_storage bench_ablation_scaling"

smoke_one() {  # smoke_one <label> <log/json stem> <cmd...>
    local label=$1 stem=$2
    shift 2
    local json="$out_dir/$stem.json"
    if ! "$@" --json "$json" > "$out_dir/$stem.log" 2>&1; then
        echo "FAIL $label: non-zero exit" >&2
        tail -20 "$out_dir/$stem.log" >&2
        fail=1
        return
    fi
    if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
        echo "FAIL $label: unparseable JSON report" >&2
        fail=1
        return
    fi
    echo "ok   $label"
    ran=$((ran + 1))
}

for core in event-horizon reference regional; do
    export FLORETSIM_SIM_CORE=$core

    # Registered scenarios: one driver run, selecting the core with the
    # --core flag (redundant with the export, which keeps the smoke of the
    # flag-parsing path honest: both spell the same core). Tiny sizes: the
    # serving grid and cluster capacity plan drop to 24 requests x 1
    # replication (the sweep scenarios are already CI-sized). Sweep-only --set keys would error
    # here ("applies to none") if the serving scenario ever left the
    # registry, which is exactly the alarm we want.
    smoke_one "floretsim_run ($core: full 13-scenario registry)" \
        "floretsim_run.$core" \
        "$driver" --threads 2 --core "$core" \
        --set max_requests=24 --set replications=1

    # Unregistered benches: the per-binary loop. bench_micro_kernels is
    # google-benchmark-driven and has no --json contract, so it is skipped.
    for bench in "$build_dir"/bench_*; do
        [ -x "$bench" ] || continue
        name=$(basename "$bench")
        [ "$name" = "bench_micro_kernels" ] && continue
        case " $registered " in
            *" $name "*) continue ;;
        esac
        smoke_one "$name ($core)" "$name.$core" "$bench" --threads 2
    done
done

if [ "$ran" -eq 0 ]; then
    echo "bench_smoke: nothing ran in $build_dir" >&2
    exit 2
fi

# Perf smoke: bench_skip_traffic with no forced core runs its in-binary
# 3-core drain A/B. On the saturated corner drain the regional core must
# (a) produce the exact SimResult the reference core produced — same
# 32-bit fold of every semantic field — and (b) put cold regions to
# sleep: per-region skipped cycles strictly positive, where the global
# event-horizon core proves almost nothing (the fabric is never globally
# quiet). A regression in either direction fails CI here.
unset FLORETSIM_SIM_CORE
perf_json="$out_dir/skip_traffic.perf.json"
if "$build_dir/bench_skip_traffic" --threads 2 --json "$perf_json" \
        > "$out_dir/skip_traffic.perf.log" 2>&1 \
   && python3 - "$perf_json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
assert m["cores_agree"] == 1.0, "simulator cores disagree on a drain result"
assert m["drain_regional_result_hash"] == m["drain_reference_result_hash"], (
    "regional drain SimResult hash differs from reference")
assert m["drain_regional_region_cycles_skipped"] > 0, (
    "regional core put no region to sleep on the saturated drain")
assert m["drain_regional_region_cycles_skipped"] > \
    m["drain_event-horizon_cycles_skipped"], (
    "regional skipping is not a strict superset of the global core's")
print("perf smoke ok: regional drain bit-identical and "
      f"{int(m['drain_regional_region_cycles_skipped'])} region-cycles slept")
EOF
then
    echo "ok   bench_skip_traffic (perf smoke: regional drain)"
    ran=$((ran + 1))
else
    echo "FAIL bench_skip_traffic perf smoke" >&2
    tail -20 "$out_dir/skip_traffic.perf.log" >&2
    fail=1
fi

# Observability smoke: the obs layer's acceptance contract.
#   1. Report parity: the same run with tracing+metrics on and off must
#      produce identical reports once volatile (wall-clock-derived) keys
#      are stripped — observability can describe a run, never change it.
#   2. --trace-out writes valid Chrome trace JSON with events; the
#      --metrics-out snapshot carries the instrumented counters.
#   3. A sharded run streams live per-shard heartbeat lines to stderr and
#      merges every worker's trace into the coordinator's file.
#   4. Unwritable output paths exit nonzero (driver and bench binaries).
obs_args=(--only fig3 --set traffic_scale=1/128 --threads 2)
obs_ok=1
"$driver" "${obs_args[@]}" --json "$out_dir/obs_off.json" \
    > "$out_dir/obs_off.log" 2>&1 || obs_ok=0
"$driver" "${obs_args[@]}" --json "$out_dir/obs_on.json" \
    --trace-out "$out_dir/obs.trace.json" \
    --metrics-out "$out_dir/obs.metrics.json" \
    > "$out_dir/obs_on.log" 2>&1 || obs_ok=0
"$driver" "${obs_args[@]}" --shards 2 --json "$out_dir/obs_shard.json" \
    --trace-out "$out_dir/obs_shard.trace.json" \
    > "$out_dir/obs_shard.log" 2> "$out_dir/obs_shard.err" || obs_ok=0
if [ "$obs_ok" = 1 ] && python3 - "$out_dir" <<'EOF'
import json, sys
out = sys.argv[1]

VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")
def strip(o):
    if isinstance(o, dict):
        return {k: strip(v) for k, v in o.items()
                if not any(s in k for s in VOLATILE)}
    if isinstance(o, list):
        return [strip(v) for v in o]
    return o

off = json.load(open(f"{out}/obs_off.json"))
on = json.load(open(f"{out}/obs_on.json"))
shard = json.load(open(f"{out}/obs_shard.json"))
assert strip(off["scenarios"]) == strip(on["scenarios"]), (
    "report changed with tracing/metrics enabled")
assert strip(off["scenarios"]) == strip(shard["scenarios"]), (
    "report changed under --shards with tracing enabled")

trace = json.load(open(f"{out}/obs.trace.json"))
assert trace["traceEvents"], "trace has no events"
for e in trace["traceEvents"]:
    assert {"ph", "pid"} <= set(e), f"malformed trace event: {e}"
names = {e.get("name") for e in trace["traceEvents"]}
assert {"sweep_point", "evaluate_noi", "fig3"} <= names, (
    f"expected spans missing: {sorted(names)}")

merged = json.load(open(f"{out}/obs_shard.trace.json"))
pids = {e.get("pid") for e in merged["traceEvents"]}
assert len(pids) >= 3, (
    f"merged trace should span coordinator + 2 workers, got pids {pids}")

metrics = json.load(open(f"{out}/obs.metrics.json"))
assert metrics["counters"].get("sweep.points", 0) > 0, "no sweep.points"
assert "sim.run_cycles" in metrics["histograms"], "no sim.run_cycles histogram"

hb_lines = [l for l in open(f"{out}/obs_shard.err") if l.startswith("[shard ")]
assert hb_lines, "no live per-shard heartbeat lines on coordinator stderr"
assert any(l.startswith("[shards]") for l in open(f"{out}/obs_shard.err")), (
    "no end-of-sweep straggler summary")
print(f"obs smoke ok: parity held, {len(trace['traceEvents'])} trace events, "
      f"{len(pids)} processes merged, {len(hb_lines)} heartbeat lines")
EOF
then
    echo "ok   observability (parity, trace, metrics, heartbeats)"
    ran=$((ran + 1))
else
    echo "FAIL observability smoke" >&2
    tail -5 "$out_dir/obs_off.log" "$out_dir/obs_on.log" \
        "$out_dir/obs_shard.err" >&2
    fail=1
fi

# Write-failure propagation: requested-but-unwritable outputs must be a
# nonzero exit, for the driver and for a bench binary alike.
if "$driver" --only fig4 --json /nonexistent-dir/x.json \
        > /dev/null 2>&1; then
    echo "FAIL driver: unwritable --json exited zero" >&2
    fail=1
elif "$driver" --only fig4 --trace-out /nonexistent-dir/t.json \
        > /dev/null 2>&1; then
    echo "FAIL driver: unwritable --trace-out exited zero" >&2
    fail=1
elif "$build_dir/bench_fig1_floret_layout" --json /nonexistent-dir/x.json \
        > /dev/null 2>&1; then
    echo "FAIL bench: unwritable --json exited zero" >&2
    fail=1
else
    echo "ok   write-failure propagation (driver + bench exit nonzero)"
    ran=$((ran + 1))
fi

echo "bench_smoke: $ran smoke runs ok"
exit $fail
