#!/usr/bin/env bash
# Bench smoke: run every bench binary on a tiny configuration with a
# --json report into a temp directory, and fail on a non-zero exit or an
# unparseable report. Catches bit-rot in rarely-run benches (and the
# JSON emitter) without paying for full-size sweeps in CI.
#
#   usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -u

build_dir=${1:-build}
if [ ! -d "$build_dir" ]; then
    echo "bench_smoke: build dir '$build_dir' not found" >&2
    exit 2
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

# Tiny per-bench arguments. Benches without an entry run their defaults
# (all are CI-sized); bench_micro_kernels is google-benchmark-driven and
# has no --json contract, so it is skipped.
tiny_args() {
    case "$1" in
        bench_serving_sla) echo "24 1" ;;  # requests-per-run replications
        *) echo "" ;;
    esac
}

fail=0
ran=0
for bench in "$build_dir"/bench_*; do
    [ -x "$bench" ] || continue
    name=$(basename "$bench")
    [ "$name" = "bench_micro_kernels" ] && continue
    json="$out_dir/$name.json"
    # shellcheck disable=SC2046  -- word-splitting the tiny args is the point
    if ! "$bench" --threads 2 --json "$json" $(tiny_args "$name") \
         > "$out_dir/$name.log" 2>&1; then
        echo "FAIL $name: non-zero exit" >&2
        tail -20 "$out_dir/$name.log" >&2
        fail=1
        continue
    fi
    if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
        echo "FAIL $name: unparseable JSON report" >&2
        fail=1
        continue
    fi
    echo "ok   $name"
    ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
    echo "bench_smoke: no bench binaries found in $build_dir" >&2
    exit 2
fi
echo "bench_smoke: $ran benches ok"
exit $fail
