#!/usr/bin/env bash
# Bench smoke: exercise every bench code path on a tiny configuration and
# fail on a non-zero exit or an unparseable JSON report. Catches bit-rot
# in rarely-run benches (and the JSON emitter) without paying for
# full-size sweeps in CI.
#
# Both simulator cores are exercised end to end (the event-horizon
# default and the reference cycle loop, via FLORETSIM_SIM_CORE). The
# figure benches that live in the scenario registry (fig3/fig4/fig5/
# table2/serving) are covered by ONE floretsim_run invocation per core:
# one process, one shared SweepEngine/fabric cache, so the registered
# scenarios cost one sweep's worth of fabric builds instead of five
# processes' — and the driver's own CLI (--set overrides, merged report)
# is smoke-tested for free. The remaining bench binaries keep their
# per-binary loop, also once per core.
#
#   usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -u

build_dir=${1:-build}
if [ ! -d "$build_dir" ]; then
    echo "bench_smoke: build dir '$build_dir' not found" >&2
    exit 2
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

fail=0
ran=0

driver="$build_dir/floretsim_run"
if [ ! -x "$driver" ]; then
    echo "bench_smoke: $driver not found" >&2
    exit 2
fi

# Figure benches covered by the driver (thin registry mains — running the
# binary would repeat the identical scenario code the driver just ran).
registered="bench_fig3_latency bench_fig4_utilization bench_fig5_energy \
bench_table2_mixes bench_serving_sla"

smoke_one() {  # smoke_one <label> <log/json stem> <cmd...>
    local label=$1 stem=$2
    shift 2
    local json="$out_dir/$stem.json"
    if ! "$@" --json "$json" > "$out_dir/$stem.log" 2>&1; then
        echo "FAIL $label: non-zero exit" >&2
        tail -20 "$out_dir/$stem.log" >&2
        fail=1
        return
    fi
    if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
        echo "FAIL $label: unparseable JSON report" >&2
        fail=1
        return
    fi
    echo "ok   $label"
    ran=$((ran + 1))
}

for core in event-horizon reference; do
    export FLORETSIM_SIM_CORE=$core

    # Registered scenarios: one driver run. Tiny sizes: the serving grid
    # drops to 24 requests x 1 replication (the sweep scenarios are
    # already CI-sized). Sweep-only --set keys would error here ("applies
    # to none") if the serving scenario ever left the registry, which is
    # exactly the alarm we want.
    smoke_one "floretsim_run ($core: fig3 fig4 fig5 table2 serving)" \
        "floretsim_run.$core" \
        "$driver" --threads 2 --set max_requests=24 --set replications=1

    # Unregistered benches: the per-binary loop. bench_micro_kernels is
    # google-benchmark-driven and has no --json contract, so it is skipped.
    for bench in "$build_dir"/bench_*; do
        [ -x "$bench" ] || continue
        name=$(basename "$bench")
        [ "$name" = "bench_micro_kernels" ] && continue
        case " $registered " in
            *" $name "*) continue ;;
        esac
        smoke_one "$name ($core)" "$name.$core" "$bench" --threads 2
    done
done

if [ "$ran" -eq 0 ]; then
    echo "bench_smoke: nothing ran in $build_dir" >&2
    exit 2
fi
echo "bench_smoke: $ran smoke runs ok"
exit $fail
