#!/usr/bin/env bash
# Bench smoke: exercise every bench code path on a tiny configuration and
# fail on a non-zero exit or an unparseable JSON report. Catches bit-rot
# in rarely-run benches (and the JSON emitter) without paying for
# full-size sweeps in CI.
#
# All three simulator cores are exercised end to end (the event-horizon
# default, the reference cycle loop, and the per-region-clock regional
# core — via FLORETSIM_SIM_CORE for the bench binaries and the --core
# flag for the driver, so the flag path itself is smoke-tested). The
# figure benches that live in the scenario registry (fig3/fig4/fig5/
# table2/serving) are covered by ONE floretsim_run invocation per core:
# one process, one shared SweepEngine/fabric cache, so the registered
# scenarios cost one sweep's worth of fabric builds instead of five
# processes' — and the driver's own CLI (--set overrides, merged report)
# is smoke-tested for free. The remaining bench binaries keep their
# per-binary loop, also once per core.
#
#   usage: scripts/bench_smoke.sh [build-dir]   (default: build)
set -u

build_dir=${1:-build}
if [ ! -d "$build_dir" ]; then
    echo "bench_smoke: build dir '$build_dir' not found" >&2
    exit 2
fi

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

fail=0
ran=0

driver="$build_dir/floretsim_run"
if [ ! -x "$driver" ]; then
    echo "bench_smoke: $driver not found" >&2
    exit 2
fi

# Figure benches covered by the driver (thin registry mains — running the
# binary would repeat the identical scenario code the driver just ran).
registered="bench_fig3_latency bench_fig4_utilization bench_fig5_energy \
bench_table2_mixes bench_serving_sla"

smoke_one() {  # smoke_one <label> <log/json stem> <cmd...>
    local label=$1 stem=$2
    shift 2
    local json="$out_dir/$stem.json"
    if ! "$@" --json "$json" > "$out_dir/$stem.log" 2>&1; then
        echo "FAIL $label: non-zero exit" >&2
        tail -20 "$out_dir/$stem.log" >&2
        fail=1
        return
    fi
    if ! python3 -m json.tool "$json" > /dev/null 2>&1; then
        echo "FAIL $label: unparseable JSON report" >&2
        fail=1
        return
    fi
    echo "ok   $label"
    ran=$((ran + 1))
}

for core in event-horizon reference regional; do
    export FLORETSIM_SIM_CORE=$core

    # Registered scenarios: one driver run, selecting the core with the
    # --core flag (redundant with the export, which keeps the smoke of the
    # flag-parsing path honest: both spell the same core). Tiny sizes: the
    # serving grid drops to 24 requests x 1 replication (the sweep
    # scenarios are already CI-sized). Sweep-only --set keys would error
    # here ("applies to none") if the serving scenario ever left the
    # registry, which is exactly the alarm we want.
    smoke_one "floretsim_run ($core: fig3 fig4 fig5 table2 serving)" \
        "floretsim_run.$core" \
        "$driver" --threads 2 --core "$core" \
        --set max_requests=24 --set replications=1

    # Unregistered benches: the per-binary loop. bench_micro_kernels is
    # google-benchmark-driven and has no --json contract, so it is skipped.
    for bench in "$build_dir"/bench_*; do
        [ -x "$bench" ] || continue
        name=$(basename "$bench")
        [ "$name" = "bench_micro_kernels" ] && continue
        case " $registered " in
            *" $name "*) continue ;;
        esac
        smoke_one "$name ($core)" "$name.$core" "$bench" --threads 2
    done
done

if [ "$ran" -eq 0 ]; then
    echo "bench_smoke: nothing ran in $build_dir" >&2
    exit 2
fi

# Perf smoke: bench_skip_traffic with no forced core runs its in-binary
# 3-core drain A/B. On the saturated corner drain the regional core must
# (a) produce the exact SimResult the reference core produced — same
# 32-bit fold of every semantic field — and (b) put cold regions to
# sleep: per-region skipped cycles strictly positive, where the global
# event-horizon core proves almost nothing (the fabric is never globally
# quiet). A regression in either direction fails CI here.
unset FLORETSIM_SIM_CORE
perf_json="$out_dir/skip_traffic.perf.json"
if "$build_dir/bench_skip_traffic" --threads 2 --json "$perf_json" \
        > "$out_dir/skip_traffic.perf.log" 2>&1 \
   && python3 - "$perf_json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
assert m["cores_agree"] == 1.0, "simulator cores disagree on a drain result"
assert m["drain_regional_result_hash"] == m["drain_reference_result_hash"], (
    "regional drain SimResult hash differs from reference")
assert m["drain_regional_region_cycles_skipped"] > 0, (
    "regional core put no region to sleep on the saturated drain")
assert m["drain_regional_region_cycles_skipped"] > \
    m["drain_event-horizon_cycles_skipped"], (
    "regional skipping is not a strict superset of the global core's")
print("perf smoke ok: regional drain bit-identical and "
      f"{int(m['drain_regional_region_cycles_skipped'])} region-cycles slept")
EOF
then
    echo "ok   bench_skip_traffic (perf smoke: regional drain)"
    ran=$((ran + 1))
else
    echo "FAIL bench_skip_traffic perf smoke" >&2
    tail -20 "$out_dir/skip_traffic.perf.log" >&2
    fail=1
fi

echo "bench_smoke: $ran smoke runs ok"
exit $fail
