#!/usr/bin/env bash
# Scenario-layer parity check (run by ctest as `scenario_parity`):
#
#   1. `floretsim_run --only fig3,fig5` in one process must produce sweep
#      rows bit-identical to the standalone bench_fig3_latency binary,
#      at *different* thread counts (the engine's determinism contract);
#   2. fig5 — running second over the shared engine — must report
#      fabric_cache_misses == 0 and fabric_cache_hits > 0: every fabric it
#      needed was already built by fig3 (the cross-scenario cache win).
#
#   usage: scripts/scenario_parity.sh <floretsim_run> <bench_fig3_latency>
set -eu

driver=$1
standalone=$2

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

"$driver" --only fig3,fig5 --threads 3 --json "$out_dir/driver.json" \
    > "$out_dir/driver.log"
"$standalone" --threads 1 --json "$out_dir/solo.json" > "$out_dir/solo.log"

python3 - "$out_dir/driver.json" "$out_dir/solo.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    driver = json.load(f)
with open(sys.argv[2]) as f:
    solo = json.load(f)

fig3 = driver["scenarios"]["fig3"]
fig5 = driver["scenarios"]["fig5"]

# 1. Bit-identical sweep rows (and the derived headline metric) across
#    processes and thread counts.
assert fig3["tables"] == solo["tables"], (
    "fig3 sweep rows differ between floretsim_run and bench_fig3_latency")
assert fig3["metrics"]["worst_ratio"] == solo["metrics"]["worst_ratio"], (
    "fig3 worst_ratio differs between floretsim_run and bench_fig3_latency")

# 2. Cross-scenario fabric-cache reuse: fig5 runs the same grids as fig3
#    and must not rebuild a single fabric.
assert fig5["metrics"]["fabric_cache_misses"] == 0, (
    "fig5 rebuilt fabrics despite running after fig3: %s misses"
    % fig5["metrics"]["fabric_cache_misses"])
assert fig5["metrics"]["fabric_cache_hits"] > 0, "fig5 never touched the cache"
assert driver["driver"]["scenarios_failed"] == 0

print("scenario parity ok: rows bit-identical, fig5 cache misses == 0,",
      "fig5 cache hits ==", fig5["metrics"]["fabric_cache_hits"])
EOF
