#!/usr/bin/env bash
# Sharded-sweep differential (run by ctest as `shard_parity`, and by CI on
# both simulator cores via FLORETSIM_SIM_CORE):
#
#   every registered scenario's merged report must be bit-identical
#   whether the sweeps run in 1 process, across --shards 2, or across
#   --shards 4 — at *different* thread counts inside each topology, so
#   the comparison also pins determinism across --threads inside each
#   worker. Only wall-clock-derived metrics (point timings, cache
#   counters, thread/shard counts) may differ; everything else — every
#   table cell, every derived metric — must match byte for byte.
#
# Sizes are CI-small (8x8 grid, 1/128 traffic, 16 serving requests,
# 40 annealing iterations for the 3D MOO studies) but the full registry
# runs, so the coordinator path is exercised against spec-driven sweeps
# (fig3/fig5/table2/ablation_scaling: distributed) AND map()-driven
# scenarios (fig4/serving/fig6: coordinator-local) in the same document.
#
#   usage: scripts/shard_parity.sh <floretsim_run> [extra driver args...]
#
# Extra arguments (e.g. --core regional) are passed through to every
# driver invocation, so the parity contract can be pinned per simulator
# core.
set -eu

driver=$1
shift

out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

common="--set grid=8x8 --set traffic_scale=1/128 \
        --set max_requests=16 --set replications=1 --set iterations=40"

# shellcheck disable=SC2086
"$driver" $common --threads 2             "$@" --json "$out_dir/p1.json" \
    > "$out_dir/p1.log"
# shellcheck disable=SC2086
"$driver" $common --threads 1 --shards 2  "$@" --json "$out_dir/s2.json" \
    > "$out_dir/s2.log"
# shellcheck disable=SC2086
"$driver" $common --threads 3 --shards 4  "$@" --json "$out_dir/s4.json" \
    > "$out_dir/s4.log"

python3 - "$out_dir/p1.json" "$out_dir/s2.json" "$out_dir/s4.json" <<'EOF'
import json, sys

docs = {path: json.load(open(path)) for path in sys.argv[1:]}

# Volatile-by-construction keys: wall-clock timings, the load-imbalance
# ratio derived from them, cache counters (sharded sweeps run on worker
# caches, not the coordinator's), and the topology knobs themselves.
VOLATILE = ("seconds", "wall", "imbalance", "cache", "threads", "shards")

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items()
                if not any(t in k for t in VOLATILE)}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

base_path = sys.argv[1]
for path, doc in docs.items():
    assert doc["driver"]["scenarios_failed"] == 0, (
        f"{path}: {doc['driver']['scenarios_failed']} scenario(s) failed")
    assert set(doc["scenarios"]) == set(docs[base_path]["scenarios"]), (
        f"{path}: scenario set differs")

base = strip(docs[base_path]["scenarios"])
for path, doc in docs.items():
    got = strip(doc["scenarios"])
    for name in base:
        assert got[name] == base[name], (
            f"{path}: scenario {name} differs from the 1-process run:\n"
            f"  base: {json.dumps(base[name])[:400]}\n"
            f"  got:  {json.dumps(got[name])[:400]}")

# The sharded runs really did dispatch workers: during fig3's sweep the
# coordinator never touches its fabric cache at all (rows arrive from the
# worker processes), while the 1-process run resolves every point against
# it. (fig2 runs first and warms the shared cache, so the 1-process
# signal is hits, not misses.)
s2 = docs[sys.argv[2]]["scenarios"]["fig3"]["metrics"]
assert s2["fabric_cache_hits"] + s2["fabric_cache_misses"] == 0, (
    "sharded fig3 touched the coordinator fabric cache — executor not "
    "installed?")
p1 = docs[base_path]["scenarios"]["fig3"]["metrics"]
assert p1["fabric_cache_hits"] + p1["fabric_cache_misses"] > 0

names = ", ".join(sorted(base))
print(f"shard parity ok: {names} bit-identical across 1 process, "
      "--shards 2, and --shards 4")
EOF
