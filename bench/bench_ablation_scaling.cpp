/// Scaling ablation (the paper argues multi-hop NoIs "do not scale with
/// more chiplets"): Floret vs SIAM mesh across system sizes running the
/// same dynamic multi-tenant schedule, reporting workload makespan, NoI
/// energy, mean route hops, and fabrication cost. Also sweeps the petal
/// count at 100 chiplets to expose the lambda trade-off.

#include <iostream>

#include "bench/common.h"
#include "src/cost/models.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Scaling: Floret vs SIAM mesh, 36..144 chiplets ===\n\n";

    cost::CostParams cp;
    auto cfg = bench::default_eval_config();

    util::TextTable t({"Chiplets", "NoI", "Mean hops", "Makespan (kcyc)",
                       "NoI energy (uJ)", "NoI area (mm2)", "Cost vs ref"});
    for (const std::int32_t side : {6, 8, 10, 12}) {
        // Same mix at every size: bigger systems run it more concurrently.
        util::Rng mix_rng(7);
        const auto mix =
            workload::random_mix(mix_rng, 3 + side, "S" + std::to_string(side));
        for (const auto arch : {bench::Arch::kSiamMesh, bench::Arch::kFloret}) {
            auto b = bench::build_arch(arch, side, side, 13, /*greedy_max_gap=*/2);
            const auto run = bench::run_mix_dynamic(b, mix, cfg);
            t.add_row({std::to_string(side * side), bench::arch_name(arch),
                       util::TextTable::fmt(b.routes().mean_hops()),
                       util::TextTable::fmt(run.total_cycles / 1e3, 1),
                       util::TextTable::fmt(run.total_energy_pj / 1e6, 2),
                       util::TextTable::fmt(cost::noi_area_mm2(b.topology(), cp), 0),
                       util::TextTable::fmt(cost::fabrication_cost(b.topology(), cp), 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\n=== Petal-count sweep at 100 chiplets ===\n\n";
    util::TextTable s({"lambda", "d (Eq.1)", "Links", "2-port routers",
                       "Mean route hops", "NoI area (mm2)"});
    for (const std::int32_t lambda : {2, 4, 5, 10, 20}) {
        const auto set = core::generate_sfc_set(10, 10, lambda);
        const auto topo = core::make_floret(set);
        const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
        s.add_row({std::to_string(lambda),
                   util::TextTable::fmt(set.tail_head_distance()),
                   std::to_string(topo.link_count()),
                   std::to_string(topo.port_histogram().at(2)),
                   util::TextTable::fmt(routes.mean_hops()),
                   util::TextTable::fmt(cost::noi_area_mm2(topo, cp), 0)});
    }
    s.print(std::cout);
    std::cout << "\nTrade-off: more petals shorten spillover routes (lower mean "
                 "hops) but add express links and head/tail router ports.\n";

    std::cout << "\n=== Weight-loading ablation (WL1 mapped once, 100 chiplets) ===\n\n";
    util::TextTable wload({"NoI", "Inference pass (kcyc)", "+ weight load (kcyc)",
                           "Load overhead"});
    for (const auto arch : {bench::Arch::kSiamMesh, bench::Arch::kFloret}) {
        double cycles[2];
        for (const bool load : {false, true}) {
            auto b = bench::build_arch(arch, 10, 10, 13, 2);
            std::vector<std::unique_ptr<dnn::Network>> owner;
            const auto queue = workload::expand_mix(workload::table2().front());
            const auto tasks =
                core::make_tasks(queue, bench::kParamsPerChipletM, owner);
            const auto mapped = b.mapper->map_queue(tasks, nullptr);
            auto c = cfg;
            c.include_weight_load = load;
            const auto res = core::evaluate_noi(b.topology(), b.routes(), mapped, c);
            cycles[load ? 1 : 0] = res.latency_cycles;
        }
        wload.add_row({bench::arch_name(arch),
                       util::TextTable::fmt(cycles[0] / 1e3, 1),
                       util::TextTable::fmt(cycles[1] / 1e3, 1),
                       util::TextTable::fmt(cycles[1] / cycles[0], 1) + "x"});
    }
    wload.print(std::cout);
    std::cout << "\nWeight loading streams every parameter from the I/O corner once "
                 "per mapping; it serializes on the I/O port for every NoI alike "
                 "and amortizes over the thousands of inference passes served per "
                 "mapping — which is why the paper evaluates steady-state "
                 "inference traffic.\n";
    return 0;
}
