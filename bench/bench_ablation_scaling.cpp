/// Scaling ablation (the paper argues multi-hop NoIs "do not scale with
/// more chiplets"): Floret vs SIAM mesh across system sizes running the
/// same dynamic multi-tenant schedule, reporting workload makespan, NoI
/// energy, mean route hops, and fabrication cost. Also sweeps the petal
/// count at 100 chiplets to expose the lambda trade-off.

#include <iostream>

#include "bench/common.h"
#include "src/cost/models.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Scaling: Floret vs SIAM mesh, 36..144 chiplets ===\n\n";

    cost::CostParams cp;
    const auto cfg = bench::default_eval_config();
    bench::SweepEngine engine(opt.threads);

    // The mix depends on the grid size (bigger systems run it more
    // concurrently), so the points are built by hand rather than as a
    // cartesian SweepSpec.
    const std::array<std::int32_t, 4> sides{6, 8, 10, 12};
    const std::array<bench::Arch, 2> archs{bench::Arch::kSiamMesh,
                                           bench::Arch::kFloret};
    std::vector<bench::SweepPoint> points;
    for (const auto side : sides) {
        util::Rng mix_rng(opt.seed_or(7));
        const auto mix =
            workload::random_mix(mix_rng, 3 + side, "S" + std::to_string(side));
        for (const auto arch : archs) {
            bench::SweepPoint p;
            p.arch = arch;
            p.width = side;
            p.height = side;
            p.mix = mix;
            p.eval = cfg;
            p.greedy_max_gap = 2;
            points.push_back(std::move(p));
        }
    }
    const auto sweep = engine.run(points);

    util::TextTable t({"Chiplets", "NoI", "Mean hops", "Makespan (kcyc)",
                       "NoI energy (uJ)", "NoI area (mm2)", "Cost vs ref"});
    for (const auto& row : sweep.rows) {
        const auto fabric = engine.cache().get(row.point.arch, row.point.width,
                                               row.point.height, row.point.swap_seed);
        t.add_row({std::to_string(row.point.width * row.point.height),
                   bench::arch_name(row.point.arch),
                   util::TextTable::fmt(fabric->routes.mean_hops()),
                   util::TextTable::fmt(row.result.total_cycles / 1e3, 1),
                   util::TextTable::fmt(row.result.total_energy_pj / 1e6, 2),
                   util::TextTable::fmt(cost::noi_area_mm2(fabric->topology, cp), 0),
                   util::TextTable::fmt(cost::fabrication_cost(fabric->topology, cp),
                                        2)});
    }
    t.print(std::cout);
    std::cout << "\nSweep: " << sweep.rows.size() << " points on "
              << engine.thread_count() << " thread(s) in "
              << util::TextTable::fmt(sweep.wall_seconds, 2) << " s (fabric cache: "
              << sweep.fabric_cache_hits << " hits / " << sweep.fabric_cache_misses
              << " misses)\n";

    std::cout << "\n=== Petal-count sweep at 100 chiplets ===\n\n";
    const std::array<std::int32_t, 5> lambdas{2, 4, 5, 10, 20};
    struct PetalRow {
        std::int32_t lambda = 0;
        double d = 0.0;
        std::int32_t links = 0;
        std::uint64_t two_port = 0;
        double mean_hops = 0.0;
        double area = 0.0;
    };
    const auto petals = engine.map(lambdas.size(), [&](std::size_t i) {
        const auto lambda = lambdas[i];
        const auto set = core::generate_sfc_set(10, 10, lambda);
        const auto topo = core::make_floret(set);
        const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
        return PetalRow{lambda, set.tail_head_distance(), topo.link_count(),
                        topo.port_histogram().at(2), routes.mean_hops(),
                        cost::noi_area_mm2(topo, cp)};
    });
    util::TextTable s({"lambda", "d (Eq.1)", "Links", "2-port routers",
                       "Mean route hops", "NoI area (mm2)"});
    for (const auto& p : petals) {
        s.add_row({std::to_string(p.lambda), util::TextTable::fmt(p.d),
                   std::to_string(p.links), std::to_string(p.two_port),
                   util::TextTable::fmt(p.mean_hops),
                   util::TextTable::fmt(p.area, 0)});
    }
    s.print(std::cout);
    std::cout << "\nTrade-off: more petals shorten spillover routes (lower mean "
                 "hops) but add express links and head/tail router ports.\n";

    std::cout << "\n=== Weight-loading ablation (WL1 mapped once, 100 chiplets) ===\n\n";
    // 4 independent evaluations (2 archs x {off, on}) through the engine.
    const auto wl_cycles = engine.map(4, [&](std::size_t i) {
        const auto arch = archs[i / 2];
        const bool load = (i % 2) == 1;
        auto b = bench::build_arch(engine.cache(), arch, 10, 10, 13, 2);
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(workload::table2().front());
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        const auto mapped = b.mapper->map_queue(tasks, nullptr);
        auto c = cfg;
        c.include_weight_load = load;
        return core::evaluate_noi(b.topology(), b.routes(), mapped, c).latency_cycles;
    });
    util::TextTable wload({"NoI", "Inference pass (kcyc)", "+ weight load (kcyc)",
                           "Load overhead"});
    for (std::size_t a = 0; a < archs.size(); ++a) {
        const double off = wl_cycles[a * 2];
        const double on = wl_cycles[a * 2 + 1];
        wload.add_row({bench::arch_name(archs[a]), util::TextTable::fmt(off / 1e3, 1),
                       util::TextTable::fmt(on / 1e3, 1),
                       util::TextTable::fmt(on / off, 1) + "x"});
    }
    wload.print(std::cout);
    std::cout << "\nWeight loading streams every parameter from the I/O corner once "
                 "per mapping; it serializes on the I/O port for every NoI alike "
                 "and amortizes over the thousands of inference passes served per "
                 "mapping — which is why the paper evaluates steady-state "
                 "inference traffic.\n";

    bench::JsonReport report("ablation_scaling");
    report.add_table("scaling", t);
    report.add_table("petal_sweep", s);
    report.add_table("weight_load", wload);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    bench::add_point_timing(report, sweep);
    return bench::finish(opt, report);
}
