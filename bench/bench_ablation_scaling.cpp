/// Scaling ablation (the paper argues multi-hop NoIs "do not scale with
/// more chiplets"): Floret vs SIAM mesh across system sizes running the
/// same dynamic multi-tenant schedule, reporting workload makespan, NoI
/// energy, mean route hops, and fabrication cost. Also sweeps the petal
/// count at 100 chiplets to expose the lambda trade-off, and isolates the
/// one-time weight-loading cost.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("ablation_scaling"), shared verbatim with the
/// floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("ablation_scaling", opt);
}
