/// Section IV quantitative study: BERT encoder stacks on (a) the
/// heterogeneous system — ReRAM SFC macro for static kernels + SRAM
/// attention modules for dynamic matrices — versus (b) the naive all-PIM
/// system that writes the attention matrices into crossbars every
/// inference. Reports end-to-end latency, the write-stall share, and the
/// macro footprint. The write wall is why "traditional NVM-based PIM
/// architectures are unsuitable" for the dynamic kernels.

#include <iostream>

#include "src/core/hetero.h"
#include "src/util/table.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Heterogeneous vs all-PIM Transformer acceleration ===\n\n";

    util::TextTable t({"Model", "System", "ReRAM chiplets", "Compute (us)",
                       "Write stalls (us)", "Latency (us)", "Slowdown"});
    for (auto model : {dnn::bert_tiny(), dnn::bert_base()}) {
        model.batch = 1;
        core::HeteroConfig cfg;
        cfg.macro_width = 10;
        cfg.macro_height = 10;
        cfg.lambda = 10;
        const auto sys = core::build_hetero_system(cfg);

        double hetero_latency = 0.0;
        for (const bool all_pim : {false, true}) {
            const auto mapping = core::map_transformer(sys, model, cfg, all_pim);
            if (!mapping.fits) {
                t.add_row({model.name, all_pim ? "all-PIM" : "heterogeneous",
                           "overflow", "-", "-", "-", "-"});
                continue;
            }
            const auto ev = core::evaluate_hetero(sys, mapping, model);
            if (!all_pim) hetero_latency = ev.latency_ns;
            t.add_row({model.name, all_pim ? "all-PIM" : "heterogeneous",
                       std::to_string(mapping.reram_chiplets_used),
                       util::TextTable::fmt(ev.compute_ns / 1e3, 1),
                       util::TextTable::fmt(ev.write_ns / 1e3, 1),
                       util::TextTable::fmt(ev.latency_ns / 1e3, 1),
                       util::TextTable::fmt(ev.latency_ns /
                                            std::max(1.0, hetero_latency)) +
                           "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe all-PIM design pays ReRAM write latency on every score\n"
                 "matrix (and would exhaust crossbar endurance in hours); the\n"
                 "SFC macro + SRAM modules split avoids it (Section IV).\n";
    return 0;
}
