/// Section IV quantitative study: BERT encoder stacks on (a) the
/// heterogeneous system — ReRAM SFC macro for static kernels + SRAM
/// attention modules for dynamic matrices — versus (b) the naive all-PIM
/// system that writes the attention matrices into crossbars every
/// inference. Reports end-to-end latency, the write-stall share, and the
/// macro footprint. The write wall is why "traditional NVM-based PIM
/// architectures are unsuitable" for the dynamic kernels.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("hetero_transformer"), shared verbatim with the
/// floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("hetero_transformer", opt);
}
