/// Section IV quantitative study: BERT encoder stacks on (a) the
/// heterogeneous system — ReRAM SFC macro for static kernels + SRAM
/// attention modules for dynamic matrices — versus (b) the naive all-PIM
/// system that writes the attention matrices into crossbars every
/// inference. Reports end-to-end latency, the write-stall share, and the
/// macro footprint. The write wall is why "traditional NVM-based PIM
/// architectures are unsuitable" for the dynamic kernels.

#include <iostream>

#include "bench/common.h"
#include "src/core/hetero.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Heterogeneous vs all-PIM Transformer acceleration ===\n\n";

    const std::array<dnn::TransformerConfig, 2> models{dnn::bert_tiny(),
                                                       dnn::bert_base()};

    struct Cell {
        bool fits = false;
        std::int32_t reram_chiplets = 0;
        double compute_ns = 0.0;
        double write_ns = 0.0;
        double latency_ns = 0.0;
    };
    // 2 models x {hetero, all-PIM}: four independent system evaluations.
    bench::SweepEngine engine(opt.threads);
    const auto cells = engine.map(models.size() * 2, [&](std::size_t i) {
        auto model = models[i / 2];
        model.batch = 1;
        const bool all_pim = (i % 2) == 1;
        core::HeteroConfig cfg;
        cfg.macro_width = 10;
        cfg.macro_height = 10;
        cfg.lambda = 10;
        const auto sys = core::build_hetero_system(cfg);
        const auto mapping = core::map_transformer(sys, model, cfg, all_pim);
        Cell c;
        c.fits = mapping.fits;
        if (!mapping.fits) return c;
        const auto ev = core::evaluate_hetero(sys, mapping, model);
        c.reram_chiplets = mapping.reram_chiplets_used;
        c.compute_ns = ev.compute_ns;
        c.write_ns = ev.write_ns;
        c.latency_ns = ev.latency_ns;
        return c;
    });

    util::TextTable t({"Model", "System", "ReRAM chiplets", "Compute (us)",
                       "Write stalls (us)", "Latency (us)", "Slowdown"});
    for (std::size_t m = 0; m < models.size(); ++m) {
        const double hetero_latency = cells[m * 2].latency_ns;
        for (const bool all_pim : {false, true}) {
            const auto& c = cells[m * 2 + (all_pim ? 1 : 0)];
            if (!c.fits) {
                t.add_row({models[m].name, all_pim ? "all-PIM" : "heterogeneous",
                           "overflow", "-", "-", "-", "-"});
                continue;
            }
            t.add_row({models[m].name, all_pim ? "all-PIM" : "heterogeneous",
                       std::to_string(c.reram_chiplets),
                       util::TextTable::fmt(c.compute_ns / 1e3, 1),
                       util::TextTable::fmt(c.write_ns / 1e3, 1),
                       util::TextTable::fmt(c.latency_ns / 1e3, 1),
                       util::TextTable::fmt(c.latency_ns /
                                            std::max(1.0, hetero_latency)) +
                           "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe all-PIM design pays ReRAM write latency on every score\n"
                 "matrix (and would exhaust crossbar endurance in hours); the\n"
                 "SFC macro + SRAM modules split avoids it (Section IV).\n";

    bench::JsonReport report("hetero_transformer");
    report.add_table("latency", t);
    return bench::finish(opt, report);
}
