/// Fig. 1 reproduction: the SFC-based Floret architecture for a 36-chiplet
/// system — six petals, heads near the NoI center, tails spilling to the
/// heads of neighboring petals. Prints the petal map, the Eq. (1) metric,
/// and the resulting topology profile.

#include <iostream>

#include "bench/common.h"
#include "src/core/floret.h"
#include "src/core/sfc.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 1: Floret layout, 36-chiplet system, lambda = 6 ===\n\n";

    const auto set = core::generate_sfc_set(6, 6, 6);
    std::cout << set.render() << '\n';
    const double d_opt = set.tail_head_distance();
    const double d_naive =
        core::generate_sfc_set(6, 6, 6, {.optimize_placement = false})
            .tail_head_distance();
    std::cout << "Eq.(1) mean tail->head distance d = " << d_opt
              << "  (naive placement: " << d_naive << ")\n\n";

    const auto t = core::make_floret(set);
    std::cout << "Topology: " << t.node_count() << " chiplets, " << t.link_count()
              << " links\n";

    util::TextTable ports({"Router ports", "Count"});
    const auto hist = t.port_histogram();
    for (std::size_t p = 1; p < hist.size(); ++p)
        if (hist.at(p) > 0)
            ports.add_row({std::to_string(p), std::to_string(hist.at(p))});
    ports.print(std::cout);

    std::cout << "\nHead/tail spillover links (top-level network):\n";
    for (const auto& l : t.links())
        if (l.hop_span > 1)
            std::cout << "  chiplet " << l.a << " <-> " << l.b << "  (span "
                      << l.hop_span << " hops, " << l.length_mm << " mm)\n";

    std::cout << "\nChiplet consumption order (first 12): ";
    const auto order = set.concatenated_order();
    for (std::size_t i = 0; i < 12; ++i) std::cout << order[i] << ' ';
    std::cout << "...\n";

    bench::JsonReport report("fig1_floret_layout");
    report.add_table("ports", ports);
    report.add_metric("tail_head_distance", d_opt);
    report.add_metric("tail_head_distance_naive", d_naive);
    report.add_metric("links", t.link_count());
    return bench::finish(opt, report);
}
