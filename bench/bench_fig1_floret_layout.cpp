/// Fig. 1 reproduction: the SFC-based Floret architecture for a 36-chiplet
/// system — six petals, heads near the NoI center, tails spilling to the
/// heads of neighboring petals. Prints the petal map, the Eq. (1) metric,
/// and the resulting topology profile.

#include <iostream>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/util/table.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Fig. 1: Floret layout, 36-chiplet system, lambda = 6 ===\n\n";

    const auto set = core::generate_sfc_set(6, 6, 6);
    std::cout << set.render() << '\n';
    std::cout << "Eq.(1) mean tail->head distance d = " << set.tail_head_distance()
              << "  (naive placement: "
              << core::generate_sfc_set(6, 6, 6, {.optimize_placement = false})
                     .tail_head_distance()
              << ")\n\n";

    const auto t = core::make_floret(set);
    std::cout << "Topology: " << t.node_count() << " chiplets, " << t.link_count()
              << " links\n";

    util::TextTable ports({"Router ports", "Count"});
    const auto hist = t.port_histogram();
    for (std::size_t p = 1; p < hist.size(); ++p)
        if (hist.at(p) > 0)
            ports.add_row({std::to_string(p), std::to_string(hist.at(p))});
    ports.print(std::cout);

    std::cout << "\nHead/tail spillover links (top-level network):\n";
    for (const auto& l : t.links())
        if (l.hop_span > 1)
            std::cout << "  chiplet " << l.a << " <-> " << l.b << "  (span "
                      << l.hop_span << " hops, " << l.length_mm << " mm)\n";

    std::cout << "\nChiplet consumption order (first 12): ";
    const auto order = set.concatenated_order();
    for (std::size_t i = 0; i < 12; ++i) std::cout << order[i] << ' ';
    std::cout << "...\n";
    return 0;
}
