/// Table I reproduction: the 13 DNN inference workloads with their
/// parameter counts. Prints the paper's literal numbers next to the
/// counts computed from our from-scratch layer graphs, plus graph stats.

#include <iostream>

#include "bench/common.h"
#include "src/dnn/model_zoo.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Table I: DNN inference workloads ===\n"
              << "(paper params as printed in Table I; computed params from the\n"
              << " reconstructed architectures — several Table I entries disagree\n"
              << " with the true model sizes, see EXPERIMENTS.md)\n\n";

    const auto& t1 = workload::table1();
    struct Row {
        std::int64_t params = 0;
        std::int64_t macs = 0;
        std::size_t layers = 0;
        std::int64_t skip_edges = 0;
    };
    // Model-graph construction fans out per workload.
    bench::SweepEngine engine(opt.threads);
    const auto rows = engine.map(t1.size(), [&](std::size_t i) {
        const auto net = dnn::build_model(t1[i].model, t1[i].dataset);
        Row r;
        r.params = net.total_params();
        r.macs = net.total_macs();
        r.layers = net.size();
        for (const auto& e : net.edges()) r.skip_edges += e.skip;
        return r;
    });

    util::TextTable t({"Name", "Model", "Dataset", "Paper params (M)",
                       "Computed params (M)", "GMACs", "Layers", "Skip edges"});
    for (std::size_t i = 0; i < t1.size(); ++i) {
        const auto& w = t1[i];
        t.add_row({w.id, w.model, dnn::dataset_name(w.dataset),
                   util::TextTable::fmt(w.paper_params_m),
                   util::TextTable::fmt(static_cast<double>(rows[i].params) / 1e6),
                   util::TextTable::fmt(static_cast<double>(rows[i].macs) / 1e9),
                   std::to_string(rows[i].layers),
                   std::to_string(rows[i].skip_edges)});
    }
    t.print(std::cout);

    bench::JsonReport report("table1_workloads");
    report.add_table("workloads", t);
    return bench::finish(opt, report);
}
