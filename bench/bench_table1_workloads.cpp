/// Table I reproduction: the 13 DNN inference workloads with their
/// parameter counts. Prints the paper's literal numbers next to the
/// counts computed from our from-scratch layer graphs, plus graph stats.

#include <iostream>

#include "src/dnn/model_zoo.h"
#include "src/util/table.h"
#include "src/workload/tables.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Table I: DNN inference workloads ===\n"
              << "(paper params as printed in Table I; computed params from the\n"
              << " reconstructed architectures — several Table I entries disagree\n"
              << " with the true model sizes, see EXPERIMENTS.md)\n\n";

    util::TextTable t({"Name", "Model", "Dataset", "Paper params (M)",
                       "Computed params (M)", "GMACs", "Layers", "Skip edges"});
    for (const auto& w : workload::table1()) {
        const auto net = dnn::build_model(w.model, w.dataset);
        std::int64_t skip_edges = 0;
        for (const auto& e : net.edges()) skip_edges += e.skip;
        t.add_row({w.id, w.model, dnn::dataset_name(w.dataset),
                   util::TextTable::fmt(w.paper_params_m),
                   util::TextTable::fmt(static_cast<double>(net.total_params()) / 1e6),
                   util::TextTable::fmt(static_cast<double>(net.total_macs()) / 1e9),
                   std::to_string(net.size()), std::to_string(skip_edges)});
    }
    t.print(std::cout);
    return 0;
}
