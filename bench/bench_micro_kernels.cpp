/// Micro-benchmarks (google-benchmark) for the hot kernels of the
/// framework: SFC generation + placement optimization, route-table
/// construction, flit simulation throughput, the steady-state thermal
/// solve, and model-zoo graph construction.

#include <benchmark/benchmark.h>

#include "src/core/floret.h"
#include "src/core/sfc.h"
#include "src/dnn/model_zoo.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/thermal/grid_solver.h"
#include "src/topo/mesh.h"
#include "src/util/rng.h"

namespace {

using namespace floretsim;

std::int32_t bench_lambda(std::int32_t side) { return side % 2 == 0 ? side / 2 : side; }

void BM_SfcGeneration(benchmark::State& state) {
    const auto side = static_cast<std::int32_t>(state.range(0));
    for (auto _ : state) {
        auto set = core::generate_sfc_set(side, side, bench_lambda(side));
        benchmark::DoNotOptimize(set);
    }
}

void BM_RouteTableUpDown(benchmark::State& state) {
    const auto side = static_cast<std::int32_t>(state.range(0));
    const auto t = topo::make_mesh(side, side);
    for (auto _ : state) {
        auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kUpDown);
        benchmark::DoNotOptimize(rt);
    }
}

void BM_SimulatorDrain(benchmark::State& state) {
    const auto t = topo::make_mesh(10, 10);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kShortestPath);
    std::int64_t flits = 0;
    for (auto _ : state) {
        noc::SimConfig cfg;
        noc::Simulator sim(t, rt, cfg);
        util::Rng rng(5);
        for (int i = 0; i < 200; ++i) {
            const auto s = static_cast<topo::NodeId>(rng.below(100));
            const auto d = static_cast<topo::NodeId>(rng.below(100));
            if (s != d) sim.add_demand({s, d, 256});
        }
        const auto res = sim.run();
        flits += res.flits;
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(flits);
}

/// Sparse single-flit packets on slow interposer wires: most simulated
/// cycles find every in-flight flit mid-pipe or blocked on credits. The
/// event-horizon core proves those cycles no-ops and jumps straight to the
/// next arrival or injection; the reference loop steps each of them. Same
/// SimResult either way.
void BM_SimulatorSparse(benchmark::State& state) {
    const bool horizon = state.range(0) != 0;
    const auto t = topo::make_mesh(10, 10);
    const auto rt = noc::RouteTable::build(t, noc::RoutingPolicy::kShortestPath);
    std::int64_t cycles = 0;
    for (auto _ : state) {
        noc::SimConfig cfg;
        cfg.injection_rate = 0.001;
        cfg.mm_per_cycle = 0.25;  // 18-cycle hops: deep link pipelines
        cfg.core = horizon ? noc::SimCore::kEventHorizon : noc::SimCore::kReference;
        noc::Simulator sim(t, rt, cfg);
        util::Rng rng(5);
        for (int i = 0; i < 30; ++i) {
            const auto s = static_cast<topo::NodeId>(rng.below(100));
            const auto d = static_cast<topo::NodeId>(rng.below(100));
            if (s != d) sim.add_demand({s, d, 8});  // one flit per packet
        }
        const auto res = sim.run();
        cycles += res.cycles;
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(cycles);
}

void BM_ThermalSolve(benchmark::State& state) {
    thermal::ThermalConfig cfg;
    std::vector<double> power(static_cast<std::size_t>(cfg.cells()), 0.8);
    for (auto _ : state) {
        auto res = thermal::solve_steady_state(cfg, power);
        benchmark::DoNotOptimize(res);
    }
}

void BM_ModelZooResNet50(benchmark::State& state) {
    for (auto _ : state) {
        auto net = dnn::build_resnet(50, dnn::Dataset::kImageNet);
        benchmark::DoNotOptimize(net);
    }
}

void BM_FloretTopologyBuild(benchmark::State& state) {
    const auto set = core::generate_sfc_set(10, 10, 10);
    for (auto _ : state) {
        auto t = core::make_floret(set);
        benchmark::DoNotOptimize(t);
    }
}

}  // namespace

BENCHMARK(BM_SfcGeneration)->Arg(6)->Arg(10)->Arg(16);
BENCHMARK(BM_RouteTableUpDown)->Arg(6)->Arg(10);
BENCHMARK(BM_SimulatorDrain);
BENCHMARK(BM_SimulatorSparse)->Arg(0)->Arg(1);
BENCHMARK(BM_ThermalSolve);
BENCHMARK(BM_ModelZooResNet50);
BENCHMARK(BM_FloretTopologyBuild);

BENCHMARK_MAIN();
