/// Fig. 3 reproduction: NoI latency of the 100-chiplet 2.5D system running
/// the Table II concurrent mixes, for Kite / SIAM / SWAP / Floret.
/// Latency = simulated cycles to drain one inference pass of all mapped
/// tasks (flit-level wormhole simulation), normalized to Floret per mix as
/// in the paper. Paper shape: Floret best; Kite/SIAM up to 2.24x worse.

#include <iostream>

#include "bench/common.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Fig. 3: NoI latency, 100 chiplets (normalized to Floret) ===\n\n";

    const auto cfg = bench::default_eval_config();
    std::vector<bench::BuiltArch> archs;
    for (const auto a : bench::kAllArchs)
        archs.push_back(bench::build_arch(a, 10, 10, 13, /*greedy_max_gap=*/2));

    util::TextTable t({"Mix", "Kite", "SIAM", "SWAP", "Floret", "Floret cycles"});
    double worst_ratio = 0.0;
    for (const auto& mix : workload::table2()) {
        std::vector<double> latency;
        for (auto& b : archs) {
            const auto run = bench::run_mix_dynamic(b, mix, cfg);
            if (!run.all_completed)
                std::cerr << "warning: " << bench::arch_name(b.arch) << "/" << mix.name
                          << " hit the cycle cap\n";
            latency.push_back(run.total_cycles);
        }
        const double floret = latency[3];
        for (int i = 0; i < 3; ++i) worst_ratio = std::max(worst_ratio, latency[i] / floret);
        t.add_row({mix.name, util::TextTable::fmt(latency[0] / floret),
                   util::TextTable::fmt(latency[1] / floret),
                   util::TextTable::fmt(latency[2] / floret), "1.00",
                   util::TextTable::fmt(floret, 0)});
    }
    t.print(std::cout);
    std::cout << "\nWorst baseline/Floret ratio observed: "
              << util::TextTable::fmt(worst_ratio)
              << "  (paper: up to 2.24x vs Kite/SIAM)\n";
    return 0;
}
