/// Fig. 3 reproduction: NoI latency of the 100-chiplet 2.5D system running
/// the Table II concurrent mixes, for Kite / SIAM / SWAP / Floret,
/// normalized to Floret per mix as in the paper (paper shape: Floret best;
/// Kite/SIAM up to 2.24x worse).
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("fig3"), shared verbatim with the floretsim_run driver —
/// the scenario_parity ctest pins that both produce bit-identical rows.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig3", opt);
}
