/// Fig. 3 reproduction: NoI latency of the 100-chiplet 2.5D system running
/// the Table II concurrent mixes, for Kite / SIAM / SWAP / Floret.
/// Latency = simulated cycles to drain one inference pass of all mapped
/// tasks (flit-level wormhole simulation), normalized to Floret per mix as
/// in the paper. Paper shape: Floret best; Kite/SIAM up to 2.24x worse.

#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 3: NoI latency, 100 chiplets (normalized to Floret) ===\n\n";

    bench::SweepSpec spec;
    spec.archs.assign(bench::kAllArchs.begin(), bench::kAllArchs.end());
    spec.mixes = workload::table2();
    spec.evals = {bench::default_eval_config()};
    spec.greedy_max_gap = 2;
    spec.run_seed = opt.seed_or(spec.run_seed);

    bench::SweepEngine engine(opt.threads);
    const auto sweep = engine.run(spec);

    util::TextTable t({"Mix", "Kite", "SIAM", "SWAP", "Floret", "Floret cycles"});
    double worst_ratio = 0.0;
    for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
        std::vector<double> latency;
        for (std::size_t a = 0; a < spec.archs.size(); ++a) {
            const auto& row = sweep.at(a, 0, m);
            if (!row.result.all_completed)
                std::cerr << "warning: " << bench::arch_name(row.point.arch) << "/"
                          << row.point.mix.name << " hit the cycle cap\n";
            latency.push_back(row.result.total_cycles);
        }
        const double floret = latency[3];
        for (int i = 0; i < 3; ++i) worst_ratio = std::max(worst_ratio, latency[i] / floret);
        t.add_row({spec.mixes[m].name, util::TextTable::fmt(latency[0] / floret),
                   util::TextTable::fmt(latency[1] / floret),
                   util::TextTable::fmt(latency[2] / floret), "1.00",
                   util::TextTable::fmt(floret, 0)});
    }
    t.print(std::cout);
    std::cout << "\nWorst baseline/Floret ratio observed: "
              << util::TextTable::fmt(worst_ratio)
              << "  (paper: up to 2.24x vs Kite/SIAM)\n"
              << "Sweep: " << sweep.rows.size() << " points on "
              << engine.thread_count() << " thread(s) in "
              << util::TextTable::fmt(sweep.wall_seconds, 2) << " s\n";

    bench::JsonReport report("fig3_latency");
    report.add_table("latency_normalized", t);
    report.add_metric("worst_ratio", worst_ratio);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    report.add_metric("sweep_threads", engine.thread_count());
    bench::add_point_timing(report, sweep);
    report.write(opt);
    return 0;
}
