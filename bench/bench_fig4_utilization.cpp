/// Fig. 4 reproduction: greedy mapping on the design-time-optimized SWAP
/// NoI leaves unmapped (NM) chiplets once concurrent DNNs fragment the
/// free space, while Floret's queue-based SFC mapping uses every chiplet.
/// We overload the 100-chiplet system with each Table II mix and report
/// mapped/unmapped chiplets and failed tasks per architecture.

#include <iostream>

#include "bench/common.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Fig. 4: resource utilization under greedy vs SFC mapping ===\n"
              << "(greedy constrained to <=2-hop gaps between consecutive layers,\n"
              << " as in the paper's contiguity requirement)\n\n";

    util::TextTable t({"Mix", "NoI", "Mapped chiplets", "Unmapped", "Tasks ok",
                       "Tasks failed", "Utilization"});
    for (const auto& mix : workload::table2()) {
        for (const auto arch : {bench::Arch::kSwap, bench::Arch::kSiamMesh,
                                bench::Arch::kFloret}) {
            auto b = bench::build_arch(arch, 10, 10, /*swap_seed=*/13,
                                       /*greedy_max_gap=*/2);
            std::vector<std::unique_ptr<dnn::Network>> owner;
            const auto queue = workload::expand_mix(mix);
            const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
            core::MappingStats stats;
            (void)b.mapper->map_queue(tasks, &stats);
            t.add_row({mix.name, bench::arch_name(arch),
                       std::to_string(stats.nodes_used),
                       std::to_string(stats.nodes_total - stats.nodes_used),
                       std::to_string(stats.tasks_mapped),
                       std::to_string(stats.tasks_failed),
                       util::TextTable::fmt(100.0 * stats.utilization(), 1) + "%"});
        }
    }
    t.print(std::cout);

    // Fig. 4's visual: the SWAP die with mapped (task letter) and
    // unmapped (".") chiplets after greedily mapping WL1.
    std::cout << "\nSWAP die after greedy mapping of WL1 (letter = task, . = NM):\n";
    {
        auto b = bench::build_arch(bench::Arch::kSwap, 10, 10, 13, 2);
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(workload::table2().front());
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        const auto mapped = b.mapper->map_queue(tasks, nullptr);
        std::vector<char> cell(100, '.');
        char label = 'A';
        for (const auto& m : mapped) {
            if (!m.mapped) continue;
            for (const auto n : m.nodes) cell[static_cast<std::size_t>(n)] = label;
            label = label == 'Z' ? 'A' : static_cast<char>(label + 1);
        }
        for (std::int32_t y = 0; y < 10; ++y) {
            std::cout << "  ";
            for (std::int32_t x = 0; x < 10; ++x)
                std::cout << cell[static_cast<std::size_t>(y * 10 + x)] << ' ';
            std::cout << '\n';
        }
    }
    std::cout << "\nFloret die after the same queue (always a contiguous prefix of "
                 "the SFC order):\n";
    {
        auto b = bench::build_arch(bench::Arch::kFloret, 10, 10);
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(workload::table2().front());
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        const auto mapped = b.mapper->map_queue(tasks, nullptr);
        std::vector<char> cell(100, '.');
        char label = 'A';
        for (const auto& m : mapped) {
            if (!m.mapped) continue;
            for (const auto n : m.nodes) cell[static_cast<std::size_t>(n)] = label;
            label = label == 'Z' ? 'A' : static_cast<char>(label + 1);
        }
        for (std::int32_t y = 0; y < 10; ++y) {
            std::cout << "  ";
            for (std::int32_t x = 0; x < 10; ++x)
                std::cout << cell[static_cast<std::size_t>(y * 10 + x)] << ' ';
            std::cout << '\n';
        }
    }
    std::cout << "\nPaper shape: SWAP/SIAM strand NM chiplets under load; Floret "
                 "consumes the SFC order fully before any task fails.\n";
    return 0;
}
