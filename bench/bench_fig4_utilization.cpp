/// Fig. 4 reproduction: greedy mapping on the design-time-optimized SWAP
/// NoI leaves unmapped (NM) chiplets once concurrent DNNs fragment the
/// free space, while Floret's queue-based SFC mapping uses every chiplet.
/// We overload the 100-chiplet system with each Table II mix and report
/// mapped/unmapped chiplets and failed tasks per architecture.

#include <iostream>

#include "bench/common.h"

namespace {

using namespace floretsim;

/// Renders the 10x10 die with one letter per mapped task ('.' = unmapped).
void print_die(const std::vector<core::MappedTask>& mapped) {
    std::vector<char> cell(100, '.');
    char label = 'A';
    for (const auto& m : mapped) {
        if (!m.mapped) continue;
        for (const auto n : m.nodes) cell[static_cast<std::size_t>(n)] = label;
        label = label == 'Z' ? 'A' : static_cast<char>(label + 1);
    }
    for (std::int32_t y = 0; y < 10; ++y) {
        std::cout << "  ";
        for (std::int32_t x = 0; x < 10; ++x)
            std::cout << cell[static_cast<std::size_t>(y * 10 + x)] << ' ';
        std::cout << '\n';
    }
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 4: resource utilization under greedy vs SFC mapping ===\n"
              << "(greedy constrained to <=2-hop gaps between consecutive layers,\n"
              << " as in the paper's contiguity requirement)\n\n";

    const std::array<bench::Arch, 3> archs{bench::Arch::kSwap, bench::Arch::kSiamMesh,
                                           bench::Arch::kFloret};
    const auto& mixes = workload::table2();

    // Mapping is cheap per point but there are mixes x archs of them, and
    // they share three fabrics — a natural engine.map with a hot cache.
    bench::SweepEngine engine(opt.threads);
    const auto stats = engine.map(mixes.size() * archs.size(), [&](std::size_t i) {
        const auto& mix = mixes[i / archs.size()];
        const auto arch = archs[i % archs.size()];
        auto b = bench::build_arch(engine.cache(), arch, 10, 10, /*swap_seed=*/13,
                                   /*greedy_max_gap=*/2);
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(mix);
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        core::MappingStats s;
        (void)b.mapper->map_queue(tasks, &s);
        return s;
    });

    util::TextTable t({"Mix", "NoI", "Mapped chiplets", "Unmapped", "Tasks ok",
                       "Tasks failed", "Utilization"});
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const auto& s = stats[i];
        t.add_row({mixes[i / archs.size()].name,
                   bench::arch_name(archs[i % archs.size()]),
                   std::to_string(s.nodes_used),
                   std::to_string(s.nodes_total - s.nodes_used),
                   std::to_string(s.tasks_mapped), std::to_string(s.tasks_failed),
                   util::TextTable::fmt(100.0 * s.utilization(), 1) + "%"});
    }
    t.print(std::cout);

    // Fig. 4's visual: the SWAP and Floret dies after greedily mapping WL1
    // (fabrics come from the engine's cache, mappers are fresh).
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const auto queue = workload::expand_mix(workload::table2().front());
    const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);

    std::cout << "\nSWAP die after greedy mapping of WL1 (letter = task, . = NM):\n";
    {
        auto b = bench::build_arch(engine.cache(), bench::Arch::kSwap, 10, 10, 13, 2);
        print_die(b.mapper->map_queue(tasks, nullptr));
    }
    std::cout << "\nFloret die after the same queue (always a contiguous prefix of "
                 "the SFC order):\n";
    {
        auto b = bench::build_arch(engine.cache(), bench::Arch::kFloret, 10, 10);
        print_die(b.mapper->map_queue(tasks, nullptr));
    }
    std::cout << "\nPaper shape: SWAP/SIAM strand NM chiplets under load; Floret "
                 "consumes the SFC order fully before any task fails.\n";

    bench::JsonReport report("fig4_utilization");
    report.add_table("utilization", t);
    report.write(opt);
    return 0;
}
