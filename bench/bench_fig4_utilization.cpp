/// Fig. 4 reproduction: greedy mapping on the design-time-optimized SWAP
/// NoI leaves unmapped (NM) chiplets once concurrent DNNs fragment the
/// free space, while Floret's queue-based SFC mapping uses every chiplet.
/// We overload the 100-chiplet system with each Table II mix and report
/// mapped/unmapped chiplets and failed tasks per architecture.
///
/// Thin main over the scenario registry ("fig4" in src/scenario/).

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig4", opt);
}
