/// Table II reproduction: the five concurrent DNN mixes for the
/// 100-chiplet system, with their parameter totals and the chiplet demand
/// they exert at the calibrated chiplet capacity — plus the full dynamic
/// arch x mix makespan sweep those mixes drive, executed on the parallel
/// SweepEngine.
///
///   --serial   run the sweep as the old hand-rolled loop (one point at a
///              time, no fabric cache) for wall-clock comparison

#include <chrono>
#include <iostream>
#include <memory>

#include "bench/common.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    const bool serial = opt.serial;
    std::cout << "=== Table II: concurrent DNN task mixes (100-chiplet system) ===\n"
              << "chiplet capacity " << bench::kParamsPerChipletM
              << "M params; demand = sum of per-task packed partitions\n\n";

    util::TextTable t({"Name", "Tasks", "Table-I params (B)", "Paper total (B)",
                       "Chiplet demand", "Fits 100?"});
    for (const auto& mix : workload::table2()) {
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(mix);
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        std::int32_t demand = 0;
        for (const auto& task : tasks) demand += task.plan.total_chiplets;
        t.add_row({mix.name, std::to_string(mix.total_instances()),
                   util::TextTable::fmt(mix.table_params_m() / 1e3, 3),
                   util::TextTable::fmt(mix.paper_total_params_b, 1),
                   std::to_string(demand), demand <= 100 ? "yes" : "no (queue waits)"});
    }
    t.print(std::cout);

    std::cout << "\nMix composition:\n";
    for (const auto& mix : workload::table2()) {
        std::cout << "  " << mix.name << ": ";
        for (std::size_t i = 0; i < mix.entries.size(); ++i) {
            if (i) std::cout << " -> ";
            std::cout << mix.entries[i].second << "x" << mix.entries[i].first;
        }
        std::cout << '\n';
    }

    // --- Dynamic sweep: every architecture runs every mix.
    bench::SweepSpec spec;
    spec.archs.assign(bench::kAllArchs.begin(), bench::kAllArchs.end());
    spec.mixes = workload::table2();
    spec.evals = {bench::default_eval_config()};
    spec.greedy_max_gap = 2;
    spec.run_seed = opt.seed_or(spec.run_seed);

    util::TextTable d({"Mix", "NoI", "Makespan (kcyc)", "Energy (uJ)", "Rounds",
                       "Completed"});
    bench::JsonReport report("table2_mixes");
    double wall_seconds = 0.0;
    std::size_t points = 0;
    std::int32_t threads = 1;
    // Fast-path economy summed over all points: simulator cycles actually
    // stepped vs. proven no-op and skipped by the event-horizon core, plus
    // whole rounds served by the unchanged-residency epoch cache.
    std::int64_t stepped = 0, skipped = 0, jumps = 0, evals = 0, epoch_hits = 0;
    const auto tally = [&](const bench::DynamicResult& run) {
        stepped += run.sim_cycles_stepped;
        skipped += run.sim_cycles_skipped;
        jumps += run.sim_horizon_jumps;
        evals += run.noi_evals;
        epoch_hits += run.round_epoch_hits;
    };
    if (serial) {
        // The pre-engine path: serial loop, topologies rebuilt per point,
        // the cycle-by-cycle reference simulator (the seed had no
        // event-horizon core), and no round epoch cache.
        auto eval = spec.evals.front();
        eval.sim.core = noc::SimCore::kReference;
        eval.round_epoch_cache = false;
        const auto t0 = std::chrono::steady_clock::now();
        for (const auto& mix : spec.mixes) {
            for (const auto a : spec.archs) {
                auto b = bench::build_arch(a, 10, 10, spec.swap_seed,
                                           spec.greedy_max_gap);
                const auto run =
                    bench::run_mix_dynamic(b, mix, eval, spec.run_seed);
                d.add_row({mix.name, bench::arch_name(a),
                           util::TextTable::fmt(run.total_cycles / 1e3, 1),
                           util::TextTable::fmt(run.total_energy_pj / 1e6, 1),
                           std::to_string(run.rounds),
                           run.all_completed ? "yes" : "NO"});
                tally(run);
                ++points;
            }
        }
        wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    } else {
        bench::SweepEngine engine(opt.threads);
        const auto sweep = engine.run(spec);
        for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
            for (std::size_t a = 0; a < spec.archs.size(); ++a) {
                const auto& row = sweep.at(a, 0, m);
                d.add_row({row.point.mix.name, bench::arch_name(row.point.arch),
                           util::TextTable::fmt(row.result.total_cycles / 1e3, 1),
                           util::TextTable::fmt(row.result.total_energy_pj / 1e6, 1),
                           std::to_string(row.result.rounds),
                           row.result.all_completed ? "yes" : "NO"});
                tally(row.result);
            }
        }
        wall_seconds = sweep.wall_seconds;
        points = sweep.rows.size();
        threads = engine.thread_count();
        bench::add_point_timing(report, sweep);
    }

    std::cout << "\n=== Dynamic makespan sweep (arch x mix) ===\n\n";
    d.print(std::cout);
    const double skip_fraction =
        stepped + skipped > 0
            ? static_cast<double>(skipped) / static_cast<double>(stepped + skipped)
            : 0.0;
    std::cout << "\nSweep: " << points << " points, "
              << (serial ? "serial seed path" : "SweepEngine") << ", " << threads
              << " thread(s), " << util::TextTable::fmt(wall_seconds, 2) << " s\n"
              << "Simulator: " << stepped << " cycles stepped, " << skipped
              << " skipped (" << util::TextTable::fmt(100.0 * skip_fraction, 1)
              << "% of simulated time) in " << jumps << " horizon jumps; "
              << evals << " NoI evals, " << epoch_hits
              << " rounds reused by the residency epoch cache\n";

    report.add_table("demand", t);
    report.add_table("dynamic_sweep", d);
    report.add_metric("sweep_wall_seconds", wall_seconds);
    report.add_metric("sweep_threads", threads);
    report.add_metric("sweep_serial", serial ? 1.0 : 0.0);
    report.add_metric("sim_cycles_stepped", static_cast<double>(stepped));
    report.add_metric("sim_cycles_skipped", static_cast<double>(skipped));
    report.add_metric("sim_horizon_jumps", static_cast<double>(jumps));
    report.add_metric("sim_skip_fraction", skip_fraction);
    report.add_metric("noi_evals", static_cast<double>(evals));
    report.add_metric("round_epoch_hits", static_cast<double>(epoch_hits));
    report.write(opt);
    return 0;
}
