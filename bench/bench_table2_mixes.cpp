/// Table II reproduction: the five concurrent DNN mixes for the
/// 100-chiplet system, with their parameter totals and the chiplet demand
/// they exert at the calibrated chiplet capacity.

#include <iostream>
#include <memory>

#include "bench/common.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Table II: concurrent DNN task mixes (100-chiplet system) ===\n"
              << "chiplet capacity " << bench::kParamsPerChipletM
              << "M params; demand = sum of per-task packed partitions\n\n";

    util::TextTable t({"Name", "Tasks", "Table-I params (B)", "Paper total (B)",
                       "Chiplet demand", "Fits 100?"});
    for (const auto& mix : workload::table2()) {
        std::vector<std::unique_ptr<dnn::Network>> owner;
        const auto queue = workload::expand_mix(mix);
        const auto tasks = core::make_tasks(queue, bench::kParamsPerChipletM, owner);
        std::int32_t demand = 0;
        for (const auto& task : tasks) demand += task.plan.total_chiplets;
        t.add_row({mix.name, std::to_string(mix.total_instances()),
                   util::TextTable::fmt(mix.table_params_m() / 1e3, 3),
                   util::TextTable::fmt(mix.paper_total_params_b, 1),
                   std::to_string(demand), demand <= 100 ? "yes" : "no (queue waits)"});
    }
    t.print(std::cout);

    std::cout << "\nMix composition:\n";
    for (const auto& mix : workload::table2()) {
        std::cout << "  " << mix.name << ": ";
        for (std::size_t i = 0; i < mix.entries.size(); ++i) {
            if (i) std::cout << " -> ";
            std::cout << mix.entries[i].second << "x" << mix.entries[i].first;
        }
        std::cout << '\n';
    }
    return 0;
}
