/// Table II reproduction: the five concurrent DNN mixes for the
/// 100-chiplet system, with their parameter totals and chiplet demand,
/// plus the full dynamic arch x mix makespan sweep those mixes drive.
///
/// Thin main over the scenario registry ("table2" in src/scenario/),
/// except for:
///
///   --serial   run the sweep as the old hand-rolled loop (one point at a
///              time, no fabric cache, reference simulator core, no round
///              epoch cache) for wall-clock comparison with the seed path

#include <chrono>
#include <iostream>

#include "bench/common.h"

namespace {

using namespace floretsim;

/// The pre-engine seed path, kept verbatim for wall-clock comparison:
/// serial loop, topologies rebuilt per point, the cycle-by-cycle
/// reference simulator (the seed had no event-horizon core), and no
/// round epoch cache.
int run_serial(const bench::Options& opt) {
    const auto& spec = std::get<bench::SweepSpec>(
        scenario::Registry::builtin().at("table2").spec);
    auto eval = spec.evals.front();
    eval.sim.core = noc::SimCore::kReference;
    eval.round_epoch_cache = false;
    const std::uint64_t run_seed = opt.seed_or(spec.run_seed);

    std::cout << "=== Table II dynamic sweep, serial seed path ===\n\n";
    util::TextTable d({"Mix", "NoI", "Makespan (kcyc)", "Energy (uJ)", "Rounds",
                       "Completed"});
    std::size_t points = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& mix : spec.mixes) {
        for (const auto a : spec.archs) {
            auto b = bench::build_arch(a, spec.grids.front().first,
                                       spec.grids.front().second, spec.swap_seed,
                                       spec.greedy_max_gap);
            const auto run = bench::run_mix_dynamic(b, mix, eval, run_seed);
            d.add_row({mix.name, bench::arch_name(a),
                       util::TextTable::fmt(run.total_cycles / 1e3, 1),
                       util::TextTable::fmt(run.total_energy_pj / 1e6, 1),
                       std::to_string(run.rounds),
                       run.all_completed ? "yes" : "NO"});
            ++points;
        }
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    d.print(std::cout);
    std::cout << "\nSweep: " << points << " points, serial seed path, 1 thread, "
              << util::TextTable::fmt(wall_seconds, 2) << " s\n";

    bench::JsonReport report("table2_mixes");
    report.add_table("dynamic_sweep", d);
    report.add_metric("sweep_wall_seconds", wall_seconds);
    report.add_metric("sweep_threads", 1);
    report.add_metric("sweep_serial", 1.0);
    return bench::finish(opt, report);
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::Options::parse(argc, argv);
    if (opt.serial) return run_serial(opt);
    return bench::run_registered_scenario("table2", opt);
}
