#include "bench/common.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <string_view>

#include "src/noc/simulator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace floretsim::bench {
namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& msg) {
    std::fprintf(stderr,
                 "%s: %s\nusage: %s [--threads N] [--json PATH] [--serial] "
                 "[--seed N] [--core reference|event-horizon|regional] "
                 "[--trace-out PATH] [--metrics-out PATH] [args...]\n",
                 argv0, msg.c_str(), argv0);
    std::exit(2);
}

}  // namespace

Options Options::parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads") {
            if (i + 1 >= argc) usage_error(argv[0], "--threads needs a value");
            const std::string_view value = argv[++i];
            std::int32_t threads = 0;
            const auto [ptr, ec] =
                std::from_chars(value.data(), value.data() + value.size(), threads);
            if (ec != std::errc() || ptr != value.data() + value.size())
                usage_error(argv[0], "--threads expects an integer");
            opt.threads = threads;
        } else if (arg == "--json") {
            if (i + 1 >= argc) usage_error(argv[0], "--json needs a path");
            opt.json_path = argv[++i];
        } else if (arg == "--seed") {
            if (i + 1 >= argc) usage_error(argv[0], "--seed needs a value");
            const std::string_view value = argv[++i];
            std::uint64_t seed = 0;
            const auto [ptr, ec] =
                std::from_chars(value.data(), value.data() + value.size(), seed);
            if (ec != std::errc() || ptr != value.data() + value.size())
                usage_error(argv[0], "--seed expects a non-negative integer");
            opt.seed = seed;
            opt.has_seed = true;
        } else if (arg == "--core") {
            if (i + 1 >= argc) usage_error(argv[0], "--core needs a name");
            const std::string value = argv[++i];
            if (!noc::sim_core_from_name(value))
                usage_error(argv[0], "--core expects reference, event-horizon "
                                     "or regional, got " + value);
            // The process-wide env override is the one switch every
            // simulation (and every forked shard worker) already honors;
            // the CLI just sets it before the first Simulator is built.
            setenv("FLORETSIM_SIM_CORE", value.c_str(), 1);
            opt.core = value;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc) usage_error(argv[0], "--trace-out needs a path");
            opt.trace_out = argv[++i];
        } else if (arg == "--metrics-out") {
            if (i + 1 >= argc) usage_error(argv[0], "--metrics-out needs a path");
            opt.metrics_out = argv[++i];
        } else if (arg == "--serial") {
            opt.serial = true;
        } else if (arg == "--help" || arg == "-h") {
            usage_error(argv[0], "help");
        } else if (arg.rfind("--", 0) == 0) {
            usage_error(argv[0], "unknown flag " + arg);
        } else {
            opt.positional.push_back(arg);
        }
    }
    // Observability is opt-in per flag and enabled at parse time, before
    // the bench body runs, so every span and counter of the run lands in
    // the requested files.
    if (!opt.trace_out.empty()) obs::Tracer::global().enable();
    if (!opt.metrics_out.empty()) obs::MetricsRegistry::global().enable();
    return opt;
}

int run_registered_scenario(
    const std::string& name, const Options& opt,
    const std::function<void(scenario::SpecVariant&)>& tweak) {
    try {
        const scenario::Scenario& sc = scenario::Registry::builtin().at(name);
        scenario::SpecVariant spec = sc.spec;
        if (opt.has_seed) scenario::set_seed(spec, opt.seed);
        if (tweak) tweak(spec);
        core::SweepEngine engine(opt.threads);
        scenario::RunContext ctx{engine, std::cout};
        JsonReport report = sc.report(spec, ctx);
        report.set_run_info("seed", static_cast<std::int64_t>(
                                        scenario::effective_seed(spec)));
        report.set_run_info("threads", engine.thread_count());
        return finish(opt, report);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "scenario %s failed: %s\n", name.c_str(), e.what());
        return 1;
    }
}

int finish(const Options& opt, const JsonReport& report) {
    int rc = 0;
    if (!report.write(opt.json_path)) rc = 1;
    if (!obs::Tracer::global().write(opt.trace_out)) rc = 1;
    if (!obs::MetricsRegistry::global().write(opt.metrics_out)) rc = 1;
    return rc;
}

}  // namespace floretsim::bench
