#include "bench/common.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>

#include "src/util/stats.h"

namespace floretsim::bench {
namespace {

[[noreturn]] void usage_error(const char* argv0, const std::string& msg) {
    std::fprintf(stderr,
                 "%s: %s\nusage: %s [--threads N] [--json PATH] [--serial] "
                 "[--seed N] [args...]\n",
                 argv0, msg.c_str(), argv0);
    std::exit(2);
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

Options Options::parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads") {
            if (i + 1 >= argc) usage_error(argv[0], "--threads needs a value");
            const std::string_view value = argv[++i];
            std::int32_t threads = 0;
            const auto [ptr, ec] =
                std::from_chars(value.data(), value.data() + value.size(), threads);
            if (ec != std::errc() || ptr != value.data() + value.size())
                usage_error(argv[0], "--threads expects an integer");
            opt.threads = threads;
        } else if (arg == "--json") {
            if (i + 1 >= argc) usage_error(argv[0], "--json needs a path");
            opt.json_path = argv[++i];
        } else if (arg == "--seed") {
            if (i + 1 >= argc) usage_error(argv[0], "--seed needs a value");
            const std::string_view value = argv[++i];
            std::uint64_t seed = 0;
            const auto [ptr, ec] =
                std::from_chars(value.data(), value.data() + value.size(), seed);
            if (ec != std::errc() || ptr != value.data() + value.size())
                usage_error(argv[0], "--seed expects a non-negative integer");
            opt.seed = seed;
            opt.has_seed = true;
        } else if (arg == "--serial") {
            opt.serial = true;
        } else if (arg == "--help" || arg == "-h") {
            usage_error(argv[0], "help");
        } else if (arg.rfind("--", 0) == 0) {
            usage_error(argv[0], "unknown flag " + arg);
        } else {
            opt.positional.push_back(arg);
        }
    }
    return opt;
}

void JsonReport::add_table(const std::string& key, const util::TextTable& table) {
    tables_.push_back(Table{key, table.header(), table.data()});
}

void JsonReport::add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
}

std::string JsonReport::to_json() const {
    std::ostringstream os;
    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    os << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
        if (i) os << ',';
        os << "\n    \"" << json_escape(metrics_[i].first) << "\": ";
        // JSON has no nan/inf literals; emit null so anomalous runs stay
        // parseable.
        if (std::isfinite(metrics_[i].second))
            os << metrics_[i].second;
        else
            os << "null";
    }
    os << (metrics_.empty() ? "},\n" : "\n  },\n");
    os << "  \"tables\": {";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const Table& tab = tables_[t];
        if (t) os << ',';
        os << "\n    \"" << json_escape(tab.key) << "\": {\n      \"columns\": [";
        for (std::size_t c = 0; c < tab.header.size(); ++c) {
            if (c) os << ", ";
            os << '"' << json_escape(tab.header[c]) << '"';
        }
        os << "],\n      \"rows\": [";
        for (std::size_t r = 0; r < tab.rows.size(); ++r) {
            if (r) os << ',';
            os << "\n        [";
            for (std::size_t c = 0; c < tab.rows[r].size(); ++c) {
                if (c) os << ", ";
                os << '"' << json_escape(tab.rows[r][c]) << '"';
            }
            os << ']';
        }
        os << (tab.rows.empty() ? "]\n    }" : "\n      ]\n    }");
    }
    os << (tables_.empty() ? "}\n}\n" : "\n  }\n}\n");
    return os.str();
}

bool JsonReport::write(const Options& opt) const {
    if (opt.json_path.empty()) return true;
    std::ofstream f(opt.json_path);
    if (!f) {
        std::fprintf(stderr, "warning: cannot write JSON report to %s\n",
                     opt.json_path.c_str());
        return false;
    }
    f << to_json();
    return static_cast<bool>(f);
}

void add_point_timing(JsonReport& report, const core::SweepResult& sweep) {
    std::vector<double> seconds;
    seconds.reserve(sweep.rows.size());
    for (const auto& row : sweep.rows) seconds.push_back(row.seconds);
    add_point_timing(report, seconds);
}

void add_point_timing(JsonReport& report, std::span<const double> point_seconds) {
    util::RunningStats t;
    for (const double s : point_seconds) t.add(s);
    if (t.empty()) return;
    report.add_metric("point_seconds_min", t.min());
    report.add_metric("point_seconds_mean", t.mean());
    report.add_metric("point_seconds_max", t.max());
    report.add_metric("point_imbalance",
                      t.mean() > 0.0 ? t.max() / t.mean() : 1.0);
}

}  // namespace floretsim::bench
