/// Eq. (1) study: the mean tail-to-head distance d across SFC counts and
/// placement strategies — the objective the Floret head/tail placement
/// minimizes. Ablation: optimized petal placement vs naive top-left
/// serpentines, plus the d achieved on the paper's grid sizes.

#include <iostream>

#include "src/core/sfc.h"
#include "src/util/table.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Eq. (1): mean tail->head distance d (placement ablation) ===\n\n";

    struct Case {
        std::int32_t w, h, lambda;
    };
    const std::vector<Case> cases{{6, 6, 6},   {8, 8, 4},   {10, 10, 4}, {10, 10, 5},
                                  {10, 10, 10}, {12, 12, 6}, {12, 12, 9}, {16, 16, 8}};

    util::TextTable t({"Grid", "lambda", "d optimized", "d naive", "Improvement"});
    for (const auto& c : cases) {
        const auto opt = core::generate_sfc_set(c.w, c.h, c.lambda);
        const auto naive =
            core::generate_sfc_set(c.w, c.h, c.lambda, {.optimize_placement = false});
        const double dopt = opt.tail_head_distance();
        const double dnaive = naive.tail_head_distance();
        t.add_row({std::to_string(c.w) + "x" + std::to_string(c.h),
                   std::to_string(c.lambda), util::TextTable::fmt(dopt),
                   util::TextTable::fmt(dnaive),
                   util::TextTable::fmt(dnaive / std::max(1e-9, dopt)) + "x"});
    }
    t.print(std::cout);

    std::cout << "\nPetal map for 10x10, lambda = 10 (100-chiplet bench config):\n"
              << core::generate_sfc_set(10, 10, 10).render();
    return 0;
}
