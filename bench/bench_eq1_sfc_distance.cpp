/// Eq. (1) study: the mean tail-to-head distance d across SFC counts and
/// placement strategies — the objective the Floret head/tail placement
/// minimizes. Ablation: optimized petal placement vs naive top-left
/// serpentines, plus the d achieved on the paper's grid sizes.

#include <iostream>

#include "bench/common.h"
#include "src/core/sfc.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Eq. (1): mean tail->head distance d (placement ablation) ===\n\n";

    struct Case {
        std::int32_t w, h, lambda;
    };
    const std::vector<Case> cases{{6, 6, 6},   {8, 8, 4},   {10, 10, 4}, {10, 10, 5},
                                  {10, 10, 10}, {12, 12, 6}, {12, 12, 9}, {16, 16, 8}};

    // Each case runs the placement optimizer twice — independent work,
    // fanned out on the engine.
    struct Row {
        double d_opt = 0.0;
        double d_naive = 0.0;
    };
    bench::SweepEngine engine(opt.threads);
    const auto rows = engine.map(cases.size(), [&](std::size_t i) {
        const auto& c = cases[i];
        Row r;
        r.d_opt = core::generate_sfc_set(c.w, c.h, c.lambda).tail_head_distance();
        r.d_naive =
            core::generate_sfc_set(c.w, c.h, c.lambda, {.optimize_placement = false})
                .tail_head_distance();
        return r;
    });

    util::TextTable t({"Grid", "lambda", "d optimized", "d naive", "Improvement"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& c = cases[i];
        t.add_row({std::to_string(c.w) + "x" + std::to_string(c.h),
                   std::to_string(c.lambda), util::TextTable::fmt(rows[i].d_opt),
                   util::TextTable::fmt(rows[i].d_naive),
                   util::TextTable::fmt(rows[i].d_naive /
                                        std::max(1e-9, rows[i].d_opt)) +
                       "x"});
    }
    t.print(std::cout);

    std::cout << "\nPetal map for 10x10, lambda = 10 (100-chiplet bench config):\n"
              << core::generate_sfc_set(10, 10, 10).render();

    bench::JsonReport report("eq1_sfc_distance");
    report.add_table("distance", t);
    return bench::finish(opt, report);
}
