/// Section II dynamic-mapping study: DNN tasks arrive and depart over
/// time; chiplets are reclaimed and reassigned. Compares the SFC first-fit
/// discipline (Floret) against scattered allocation on fragmentation and
/// allocation quality — the paper's rationale for multiple SFCs with
/// short tail-to-head jumps.

#include <iostream>

#include "bench/common.h"
#include "src/core/scheduler.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Dynamic multi-tenant allocation, 100-chiplet Floret ===\n\n";

    const auto set = core::generate_sfc_set(10, 10, 10);
    const std::vector<double> loads{0.2, 0.4, 0.7};
    const std::array<core::AllocationPolicy, 2> policies{
        core::AllocationPolicy::kSfcFirstFit, core::AllocationPolicy::kScattered};

    // Each (load, policy) is an independent 4000-slot simulation — the
    // engine fans them out.
    bench::SweepEngine engine(opt.threads);
    const auto stats =
        engine.map(loads.size() * policies.size(), [&](std::size_t i) {
            core::SchedulerConfig cfg;
            cfg.slots = 4000;
            cfg.arrival_prob = loads[i / policies.size()];
            cfg.seed = opt.seed_or(cfg.seed);
            return core::simulate_dynamic(set, policies[i % policies.size()], cfg);
        });

    util::TextTable t({"Policy", "Load", "Accepted", "Rejected", "Mean util",
                       "Fragments/task", "Mean intra-task gap"});
    for (std::size_t i = 0; i < stats.size(); ++i) {
        const auto& s = stats[i];
        const auto policy = policies[i % policies.size()];
        t.add_row({policy == core::AllocationPolicy::kSfcFirstFit ? "SFC first-fit"
                                                                  : "Scattered",
                   util::TextTable::fmt(loads[i / policies.size()], 1),
                   std::to_string(s.accepted), std::to_string(s.rejected),
                   util::TextTable::fmt(100.0 * s.mean_utilization, 1) + "%",
                   util::TextTable::fmt(s.mean_fragments_per_task),
                   util::TextTable::fmt(s.mean_intra_task_gap)});
    }
    t.print(std::cout);
    std::cout << "\nShape: SFC first-fit keeps tasks near-contiguous (few "
                 "fragments, small gaps) at identical acceptance.\n";

    bench::JsonReport report("scheduler_dynamic");
    report.add_table("allocation", t);
    return bench::finish(opt, report);
}
