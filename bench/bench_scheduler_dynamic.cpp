/// Section II dynamic-mapping study: DNN tasks arrive and depart over
/// time; chiplets are reclaimed and reassigned. Compares the SFC first-fit
/// discipline (Floret) against scattered allocation on fragmentation and
/// allocation quality — the paper's rationale for multiple SFCs with
/// short tail-to-head jumps.

#include <iostream>

#include "src/core/scheduler.h"
#include "src/util/table.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Dynamic multi-tenant allocation, 100-chiplet Floret ===\n\n";

    const auto set = core::generate_sfc_set(10, 10, 10);
    util::TextTable t({"Policy", "Load", "Accepted", "Rejected", "Mean util",
                       "Fragments/task", "Mean intra-task gap"});
    for (const double load : {0.2, 0.4, 0.7}) {
        for (const auto policy :
             {core::AllocationPolicy::kSfcFirstFit, core::AllocationPolicy::kScattered}) {
            core::SchedulerConfig cfg;
            cfg.slots = 4000;
            cfg.arrival_prob = load;
            const auto s = core::simulate_dynamic(set, policy, cfg);
            t.add_row({policy == core::AllocationPolicy::kSfcFirstFit ? "SFC first-fit"
                                                                      : "Scattered",
                       util::TextTable::fmt(load, 1), std::to_string(s.accepted),
                       std::to_string(s.rejected),
                       util::TextTable::fmt(100.0 * s.mean_utilization, 1) + "%",
                       util::TextTable::fmt(s.mean_fragments_per_task),
                       util::TextTable::fmt(s.mean_intra_task_gap)});
        }
    }
    t.print(std::cout);
    std::cout << "\nShape: SFC first-fit keeps tasks near-contiguous (few "
                 "fragments, small gaps) at identical acceptance.\n";
    return 0;
}
