/// Eqs. 2-5 reproduction: NoI area, Poisson yield, and fabrication cost of
/// the four NoIs at 100 chiplets, relative to Floret and to the AMD-class
/// 864 mm^2 / 64-chiplet reference. Paper: Floret cuts fabrication cost by
/// ~2.8x (Kite), ~2.1x (SIAM), ~1.89x (SWAP).

#include <iostream>

#include "bench/common.h"
#include "src/cost/models.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Eqs. 2-5: NoI area / yield / fabrication cost, 100 chiplets ===\n\n";

    cost::CostParams p;
    bench::SweepEngine engine(opt.threads);
    const auto fabrics =
        engine.map(bench::kAllArchs.size(), [&](std::size_t i) {
            return engine.cache().get(bench::kAllArchs[i], 10, 10);
        });
    const auto& floret = fabrics.back()->topology;

    util::TextTable t({"NoI", "Router area (mm2)", "Link area (mm2)", "NoI area (mm2)",
                       "Yield", "Cost vs ref (Eq.2)", "Cost vs Floret (Eq.5)"});
    for (const auto& f : fabrics) {
        const double ra = cost::router_area_mm2(f->topology, p);
        const double la = cost::link_area_mm2(f->topology, p);
        const double area = ra + la;
        t.add_row({bench::arch_name(f->arch), util::TextTable::fmt(ra, 1),
                   util::TextTable::fmt(la, 1), util::TextTable::fmt(area, 1),
                   util::TextTable::fmt(cost::yield(area, p), 3),
                   util::TextTable::fmt(cost::fabrication_cost(f->topology, p), 3),
                   util::TextTable::fmt(cost::relative_cost(f->topology, floret, p), 2)});
    }
    t.print(std::cout);

    std::cout << "\nPaper cost ratios vs Floret: Kite 2.8x, SIAM 2.1x, SWAP 1.89x\n"
              << "Defect density D0 = " << p.defect_density_per_mm2 * 100.0
              << " /cm2; reference NoI " << p.ref_noi_area_mm2 << " mm2 / "
              << p.ref_chiplets << " chiplets.\n";

    bench::JsonReport report("cost_fabrication");
    report.add_table("cost", t);
    return bench::finish(opt, report);
}
