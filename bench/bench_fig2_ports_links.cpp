/// Fig. 2 reproduction: (a) router-port configuration and (b) total link
/// count for Kite, SIAM, SWAP, and Floret on a 100-chiplet 2.5D system.
/// Paper shape: Kite is dominated by 4-port routers; SIAM by 3/4-port;
/// SWAP by 2/3-port; Floret is almost entirely 2-port. Floret has the
/// fewest/shortest links, Kite mainly two-hop links.

#include <iostream>
#include <memory>

#include "bench/common.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 2(a): router-port configuration, 100 chiplets ===\n\n";

    // The four fabrics through the engine's shared cache (route tables are
    // the expensive part and other benches in a pipeline reuse them).
    bench::SweepEngine engine(opt.threads);
    const auto fabrics =
        engine.map(bench::kAllArchs.size(), [&](std::size_t i) {
            return engine.cache().get(bench::kAllArchs[i], 10, 10);
        });

    std::size_t max_ports = 0;
    for (const auto& f : fabrics)
        max_ports = std::max(max_ports, f->topology.port_histogram().size());

    std::vector<std::string> header{"Ports"};
    for (const auto& f : fabrics) header.push_back(bench::arch_name(f->arch));
    util::TextTable ports(header);
    for (std::size_t p = 1; p < max_ports; ++p) {
        std::vector<std::string> row{std::to_string(p)};
        std::uint64_t total = 0;
        for (const auto& f : fabrics) {
            const auto c = f->topology.port_histogram().at(p);
            total += c;
            row.push_back(std::to_string(c));
        }
        if (total > 0) ports.add_row(std::move(row));
    }
    ports.print(std::cout);

    std::cout << "\n=== Fig. 2(b): links, 100 chiplets ===\n\n";
    util::TextTable links({"NoI", "Total links", "1-hop", "2-hop", ">=3-hop",
                           "Mean length (mm)"});
    for (const auto& f : fabrics) {
        const auto spans = f->topology.link_span_histogram();
        std::uint64_t ge3 = 0;
        for (std::size_t s = 3; s < spans.size(); ++s) ge3 += spans.at(s);
        double len = 0.0;
        for (const auto& l : f->topology.links()) len += l.length_mm;
        links.add_row({bench::arch_name(f->arch),
                       std::to_string(f->topology.link_count()),
                       std::to_string(spans.at(1)), std::to_string(spans.at(2)),
                       std::to_string(ge3),
                       util::TextTable::fmt(len / f->topology.link_count())});
    }
    links.print(std::cout);

    std::cout << "\nPaper shape check: Kite mode=4 ports & 2-hop links; SIAM 3-4 "
                 "ports, 1-hop; SWAP 2-3 ports, some long links; Floret ~all "
                 "2-port, fewest links.\n";

    bench::JsonReport report("fig2_ports_links");
    report.add_table("ports", ports);
    report.add_table("links", links);
    return bench::finish(opt, report);
}
