/// Fig. 2 reproduction: (a) router-port configuration and (b) total link
/// count for Kite, SIAM, SWAP, and Floret on a 100-chiplet 2.5D system.
/// Paper shape: Kite is dominated by 4-port routers; SIAM by 3/4-port;
/// SWAP by 2/3-port; Floret is almost entirely 2-port. Floret has the
/// fewest/shortest links, Kite mainly two-hop links.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("fig2"), shared verbatim with the floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig2", opt);
}
