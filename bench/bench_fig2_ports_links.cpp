/// Fig. 2 reproduction: (a) router-port configuration and (b) total link
/// count for Kite, SIAM, SWAP, and Floret on a 100-chiplet 2.5D system.
/// Paper shape: Kite is dominated by 4-port routers; SIAM by 3/4-port;
/// SWAP by 2/3-port; Floret is almost entirely 2-port. Floret has the
/// fewest/shortest links, Kite mainly two-hop links.

#include <iostream>

#include "bench/common.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Fig. 2(a): router-port configuration, 100 chiplets ===\n\n";

    std::vector<bench::BuiltArch> archs;
    for (const auto a : bench::kAllArchs) archs.push_back(bench::build_arch(a, 10, 10));

    std::size_t max_ports = 0;
    for (const auto& b : archs) max_ports = std::max(max_ports, b.topology().port_histogram().size());

    std::vector<std::string> header{"Ports"};
    for (const auto& b : archs) header.push_back(bench::arch_name(b.arch));
    util::TextTable ports(header);
    for (std::size_t p = 1; p < max_ports; ++p) {
        std::vector<std::string> row{std::to_string(p)};
        std::uint64_t total = 0;
        for (const auto& b : archs) {
            const auto c = b.topology().port_histogram().at(p);
            total += c;
            row.push_back(std::to_string(c));
        }
        if (total > 0) ports.add_row(std::move(row));
    }
    ports.print(std::cout);

    std::cout << "\n=== Fig. 2(b): links, 100 chiplets ===\n\n";
    util::TextTable links({"NoI", "Total links", "1-hop", "2-hop", ">=3-hop",
                           "Mean length (mm)"});
    for (const auto& b : archs) {
        const auto spans = b.topology().link_span_histogram();
        std::uint64_t ge3 = 0;
        for (std::size_t s = 3; s < spans.size(); ++s) ge3 += spans.at(s);
        double len = 0.0;
        for (const auto& l : b.topology().links()) len += l.length_mm;
        links.add_row({bench::arch_name(b.arch),
                       std::to_string(b.topology().link_count()),
                       std::to_string(spans.at(1)), std::to_string(spans.at(2)),
                       std::to_string(ge3),
                       util::TextTable::fmt(len / b.topology().link_count())});
    }
    links.print(std::cout);

    std::cout << "\nPaper shape check: Kite mode=4 ports & 2-hop links; SIAM 3-4 "
                 "ports, 1-hop; SWAP 2-3 ports, some long links; Floret ~all "
                 "2-port, fewest links.\n";
    return 0;
}
