/// Fig. 7 reproduction: thermal hotspots in the bottom tier (farthest from
/// the heat sink) for ResNet34 on the 100-PE 3D system, under (a) the
/// Floret performance-only mapping and (b) the thermal-aware joint
/// mapping. Paper: ~17 K higher peak and more hotspots for (a).

#include <iostream>

#include "bench/common.h"
#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/pim/partitioner.h"
#include "src/thermal/power.h"
#include "src/topo/mesh.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 7: bottom-tier thermal maps, ResNet34 on 100 PEs ===\n\n";

    const auto topo3d = topo::make_mesh3d(5, 5, 4);
    const auto routes = noc::RouteTable::build(topo3d, noc::RoutingPolicy::kShortestPath);
    thermal::ThermalConfig tcfg;
    thermal::PowerParams pcfg;
    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    core::MooConfig moo;
    moo.iterations = 1500;
    // The joint design targets the ReRAM-safe temperature (Section III):
    // a strong thermal weight makes it trade EDP for accuracy headroom.
    moo.w_thermal = 0.2;
    moo.t_target_k = 331.0;

    const auto& w = workload::workload_by_id("DNN2");  // ResNet34 (paper's RN10 label)
    const auto net = dnn::build_model(w.model, w.dataset);
    const auto plan =
        pim::partition_by_params(net, w.paper_params_m, w.paper_params_m / 88.0);
    pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);

    // The two annealing runs are independent — fan them out.
    bench::SweepEngine engine(opt.threads);
    const auto results = engine.map(2, [&](std::size_t i) {
        return i == 0 ? core::optimize_perf_only(net, plan, routes, tcfg, pcfg, rcfg,
                                                 acc, perf, moo)
                      : core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc,
                                             perf, moo);
    });

    auto render_for = [&](std::span<const topo::NodeId> order, const char* title) {
        const auto assign = pim::assign_layers(net, plan, order);
        const auto power = thermal::pe_power_map(net, assign, tcfg.cells(), pcfg);
        const auto res = thermal::solve_steady_state(tcfg, power);
        std::cout << title << "\n"
                  << thermal::render_tier(res, 0) << "peak " << res.peak_k()
                  << " K, bottom-tier hotspots >340K: " << res.hotspot_count(0, 340.0)
                  << "\n\n";
        return res;
    };

    const auto ra =
        render_for(results[0].pe_order, "(a) Floret-based 3D NoC (perf-only)");
    const auto rb = render_for(results[1].pe_order, "(b) Thermal-aware 3D NoC (joint)");

    const double delta = ra.peak_k() - rb.peak_k();
    std::cout << "Peak delta (a)-(b): " << delta
              << " K   (paper: ~17 K for ResNet34)\n";

    bench::JsonReport report("fig7_thermal_map");
    report.add_metric("peak_k_perf_only", ra.peak_k());
    report.add_metric("peak_k_joint", rb.peak_k());
    report.add_metric("peak_delta_k", delta);
    return bench::finish(opt, report);
}
