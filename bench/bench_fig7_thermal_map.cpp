/// Fig. 7 reproduction: thermal hotspots in the bottom tier (farthest from
/// the heat sink) for ResNet34 on the 100-PE 3D system, under (a) the
/// Floret performance-only mapping and (b) the thermal-aware joint
/// mapping. Paper: ~17 K higher peak and more hotspots for (a).
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("fig7"), shared verbatim with the floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig7", opt);
}
