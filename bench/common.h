#pragma once

/// Shared harness for the paper-reproduction benches. The experiment
/// infrastructure (architecture builders, dynamic multi-tenant runner) and
/// the parallel sweep engine are library code in src/core/ — tested like
/// everything else; this header aliases them into the bench namespace and
/// adds the thin command-line/reporting layer every bench shares:
///
///   --threads N     worker threads for the SweepEngine (0 = hardware)
///   --json PATH     machine-readable report alongside the printed tables
///   --serial        run the pre-engine serial path (benches that have one)
///   --seed N        override the bench's built-in experiment seed, so
///                   stochastic benches (scheduler, serving) are replayable
///
/// Remaining non-flag arguments stay positional (each bench documents its
/// own); unrecognized --flags are a usage error so typos cannot silently
/// select the wrong code path.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/sweep.h"
#include "src/util/table.h"

namespace floretsim::bench {
using namespace floretsim::core::experiment;  // NOLINT: intentional alias
using core::SweepEngine;
using core::SweepPoint;
using core::SweepResult;
using core::SweepSpec;

/// Parsed command-line options shared by every bench binary.
struct Options {
    std::int32_t threads = 0;  ///< SweepEngine worker count (0 = hardware).
    std::string json_path;     ///< Empty = no JSON report.
    bool serial = false;       ///< Use the pre-engine serial path.
    std::uint64_t seed = 0;    ///< Only meaningful when has_seed.
    bool has_seed = false;     ///< --seed was given on the command line.
    std::vector<std::string> positional;

    /// The CLI seed when given, the bench's own default otherwise.
    [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const noexcept {
        return has_seed ? seed : fallback;
    }

    /// Parses argv; exits with a usage message on malformed flags.
    static Options parse(int argc, char** argv);
};

/// Accumulates the bench's tables and scalar metrics and renders them as a
/// JSON document, giving every bench a machine-readable trajectory file
/// next to the human-readable output. Table cells are emitted as strings
/// exactly as printed; metrics are numbers.
class JsonReport {
public:
    explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

    void add_table(const std::string& key, const util::TextTable& table);
    void add_metric(const std::string& key, double value);

    /// Serializes the report.
    [[nodiscard]] std::string to_json() const;

    /// Writes to opt.json_path when set (silently a no-op otherwise).
    /// Returns false if the file could not be written.
    bool write(const Options& opt) const;

private:
    struct Table {
        std::string key;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };
    std::string name_;
    std::vector<Table> tables_;
    std::vector<std::pair<std::string, double>> metrics_;
};

/// Adds the per-point wall-clock spread of a sweep to the report —
/// point_seconds_{min,mean,max} and point_imbalance (max/mean, 1.0 =
/// perfectly balanced) — the load-balance signal for tuning how sweeps
/// partition across workers.
void add_point_timing(JsonReport& report, const core::SweepResult& sweep);
/// Same signal for SweepEngine::timed_map fan-outs.
void add_point_timing(JsonReport& report, std::span<const double> point_seconds);

}  // namespace floretsim::bench
