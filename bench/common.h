#pragma once

/// Shared harness for the paper-reproduction benches. The actual
/// experiment infrastructure (architecture builders, dynamic multi-tenant
/// runner) is library code in src/core/experiment.h — tested like
/// everything else; this header only aliases it into the bench namespace
/// and pulls in the table printer.

#include "src/core/experiment.h"
#include "src/util/table.h"

namespace floretsim::bench {
using namespace floretsim::core::experiment;  // NOLINT: intentional alias
}  // namespace floretsim::bench
