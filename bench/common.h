#pragma once

/// Shared harness for the paper-reproduction benches. The experiment
/// infrastructure (architecture builders, dynamic multi-tenant runner),
/// the parallel sweep engine, and the scenario layer (declarative specs,
/// registry, JSON reports) are library code in src/ — tested like
/// everything else; this header aliases them into the bench namespace and
/// adds the thin command-line layer every bench shares:
///
///   --threads N     worker threads for the SweepEngine (0 = hardware)
///   --json PATH     machine-readable report alongside the printed tables
///   --serial        run the pre-engine serial path (benches that have one)
///   --seed N        override the bench's built-in experiment seed, so
///                   stochastic benches (scheduler, serving) are replayable
///   --core NAME     select the simulator core (reference | event-horizon |
///                   regional) for every simulation of the run; implemented
///                   by setting FLORETSIM_SIM_CORE before first use, so it
///                   also reaches forked shard workers
///   --trace-out F   enable span tracing, write Chrome trace-event JSON to F
///   --metrics-out F enable the metrics registry, write its snapshot to F
///
/// Remaining non-flag arguments stay positional (each bench documents its
/// own); unrecognized --flags are a usage error so typos cannot silently
/// select the wrong code path.
///
/// Figure benches that exist in the scenario registry are one-liners over
/// run_registered_scenario(): the registry's report function is the only
/// implementation, so the standalone binary and the floretsim_run driver
/// are bit-identical by construction.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/sweep.h"
#include "src/scenario/registry.h"
#include "src/scenario/report.h"
#include "src/util/table.h"

namespace floretsim::bench {
using namespace floretsim::core::experiment;  // NOLINT: intentional alias
using core::SweepEngine;
using core::SweepPoint;
using core::SweepResult;
using core::SweepSpec;
using scenario::add_point_timing;
using scenario::JsonReport;

/// Parsed command-line options shared by every bench binary.
struct Options {
    std::int32_t threads = 0;  ///< SweepEngine worker count (0 = hardware).
    std::string json_path;     ///< Empty = no JSON report.
    bool serial = false;       ///< Use the pre-engine serial path.
    std::uint64_t seed = 0;    ///< Only meaningful when has_seed.
    bool has_seed = false;     ///< --seed was given on the command line.
    std::string core;          ///< --core name; empty = config/env default.
    std::string trace_out;     ///< --trace-out path; empty = tracing off.
    std::string metrics_out;   ///< --metrics-out path; empty = metrics off.
    std::vector<std::string> positional;

    /// The CLI seed when given, the bench's own default otherwise.
    [[nodiscard]] std::uint64_t seed_or(std::uint64_t fallback) const noexcept {
        return has_seed ? seed : fallback;
    }

    /// Parses argv; exits with a usage message on malformed flags.
    static Options parse(int argc, char** argv);
};

/// Runs one registered scenario the way a standalone bench binary does:
/// copies the registry spec, applies --seed and the optional tweak (the
/// bench's positional arguments), executes on a fresh engine with
/// opt.threads workers, and writes the JSON report to --json. Returns the
/// process exit code.
int run_registered_scenario(
    const std::string& name, const Options& opt,
    const std::function<void(scenario::SpecVariant&)>& tweak = {});

/// The uniform bench epilogue: writes the JSON report to --json and the
/// enabled observability outputs to --trace-out/--metrics-out. Returns
/// the process exit code — nonzero when any requested file could not be
/// written, so a full disk or a bad path can never masquerade as a
/// successful run. Benches return `finish(opt, report)` (or combine it
/// with their own status: `rc | finish(...)`).
[[nodiscard]] int finish(const Options& opt, const JsonReport& report);

}  // namespace floretsim::bench
