/// SLA study over the four compared NoI architectures: each serves the
/// identical open-loop multi-tenant request stream (Poisson arrivals, the
/// default interactive/batch tenants) at rising offered load. Reported per
/// (arch, load): latency percentiles from the streaming sketch, offered vs.
/// delivered throughput, utilization, queue depth, and the SLA-violation
/// rate — plus each architecture's *SLA knee*, the lowest offered load
/// whose violation rate crosses the threshold. The whole grid (arch x load
/// x replication) fans out on the SweepEngine.
///
///   positional: [max_requests per run] [replications]   (default 80, 2)

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/serve/sweep.h"

namespace {

constexpr double kKneeViolationRate = 0.05;

std::int64_t positional_int(const char* argv0, const std::string& value,
                            const char* what) {
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size() || parsed <= 0) {
        std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n",
                     argv0, what, value.c_str());
        std::exit(2);
    }
    return parsed;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::int64_t max_requests = 80;
    std::int32_t replications = 2;
    if (!opt.positional.empty())
        max_requests = positional_int(argv[0], opt.positional[0], "max_requests");
    if (opt.positional.size() > 1)
        replications = static_cast<std::int32_t>(
            positional_int(argv[0], opt.positional[1], "replications"));

    const std::vector<double> loads{100.0, 250.0, 500.0, 1000.0, 2000.0};
    const std::uint64_t base_seed = opt.seed_or(21);

    std::cout << "=== Serving SLA knee: arch x offered load (10x10, "
              << max_requests << " requests x " << replications
              << " replications) ===\n"
              << "tenants: interactive (100 kcyc SLO) + batch (500 kcyc SLO), "
                 "FIFO admission\nknee threshold: violation rate > "
              << 100.0 * kKneeViolationRate << "%\n\n";

    serve::ServeConfig base_cfg = serve::default_serve_config();
    base_cfg.arrivals.max_requests = max_requests;

    // Flatten arch x load x replication into one engine fan-out so the
    // slowest (highest-load) points overlap with everything else.
    struct Cell {
        std::size_t arch_idx, load_idx;
    };
    std::vector<Cell> cells;
    for (std::size_t a = 0; a < bench::kAllArchs.size(); ++a)
        for (std::size_t l = 0; l < loads.size(); ++l) cells.push_back({a, l});

    bench::SweepEngine engine(opt.threads);
    const auto n_reps = static_cast<std::size_t>(replications);
    std::vector<double> point_seconds;
    const auto runs =
        engine.timed_map(cells.size() * n_reps, [&](std::size_t i) {
            const Cell& cell = cells[i / n_reps];
            // Same contiguity budget as the Table II study: baselines fail
            // a placement when fragmentation scatters it, Floret spills
            // along the SFC — under sustained load this is the queueing
            // difference the serving layer exists to expose.
            auto arch = bench::build_arch(engine.cache(),
                                          bench::kAllArchs[cell.arch_idx], 10, 10,
                                          /*swap_seed=*/13, /*greedy_max_gap=*/2);
            serve::ServeConfig cfg = base_cfg;
            cfg.arrivals.rate_per_mcycle = loads[cell.load_idx];
            cfg.seed = base_seed + i % n_reps;
            return serve::serve_requests(arch, cfg);
        }, point_seconds);

    util::TextTable t({"NoI", "Load (req/Mcyc)", "Delivered", "p50 (kcyc)",
                       "p95 (kcyc)", "p99 (kcyc)", "Util", "Queue", "SLA viol"});
    bench::JsonReport report("serving_sla");
    std::vector<double> knee(bench::kAllArchs.size(), -1.0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const auto& cell = cells[c];
        const std::span<const serve::ServeStats> reps(&runs[c * n_reps], n_reps);
        const auto agg = serve::aggregate(reps);
        const std::string arch = bench::arch_name(bench::kAllArchs[cell.arch_idx]);
        const std::string load = util::TextTable::fmt(loads[cell.load_idx], 0);
        t.add_row({arch, load,
                   util::TextTable::fmt(agg.mean_throughput_per_mcycle, 1),
                   util::TextTable::fmt(agg.p50_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(agg.p95_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(agg.p99_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(100.0 * agg.mean_utilization, 1) + "%",
                   util::TextTable::fmt(agg.mean_queue_depth, 1),
                   util::TextTable::fmt(100.0 * agg.sla_violation_rate(), 1) +
                       "%"});
        const std::string key = arch + "_load" + load;
        report.add_metric(key + "_p50_kcyc", agg.p50_latency_cycles / 1e3);
        report.add_metric(key + "_p95_kcyc", agg.p95_latency_cycles / 1e3);
        report.add_metric(key + "_p99_kcyc", agg.p99_latency_cycles / 1e3);
        report.add_metric(key + "_sla_violation_rate", agg.sla_violation_rate());
        report.add_metric(key + "_throughput_per_mcyc",
                          agg.mean_throughput_per_mcycle);
        if (knee[cell.arch_idx] < 0.0 &&
            agg.sla_violation_rate() > kKneeViolationRate)
            knee[cell.arch_idx] = loads[cell.load_idx];
    }
    t.print(std::cout);

    std::cout << "\nSLA knee (lowest load with violation rate > "
              << 100.0 * kKneeViolationRate << "%):\n";
    for (std::size_t a = 0; a < bench::kAllArchs.size(); ++a) {
        std::cout << "  " << bench::arch_name(bench::kAllArchs[a]) << ": "
                  << (knee[a] < 0.0 ? "beyond " +
                                          util::TextTable::fmt(loads.back(), 0)
                                    : util::TextTable::fmt(knee[a], 0))
                  << " req/Mcyc\n";
        report.add_metric(std::string(bench::arch_name(bench::kAllArchs[a])) +
                              "_knee_load",
                          knee[a]);
    }
    // Simulator fast-path economy across the whole grid: how much simulated
    // time the event-horizon core proved no-op, and how many rounds the
    // resident-set memo absorbed without touching the simulator at all.
    std::int64_t stepped = 0, skipped = 0, jumps = 0, rounds = 0, hits = 0;
    for (const auto& s : runs) {
        stepped += s.sim_cycles_stepped;
        skipped += s.sim_cycles_skipped;
        jumps += s.sim_horizon_jumps;
        rounds += s.noi_rounds;
        hits += s.noi_cache_hits;
    }
    const double skip_fraction =
        stepped + skipped > 0
            ? static_cast<double>(skipped) / static_cast<double>(stepped + skipped)
            : 0.0;
    std::cout << "\nSimulator: " << stepped << " cycles stepped, " << skipped
              << " skipped (" << util::TextTable::fmt(100.0 * skip_fraction, 1)
              << "% of simulated time) in " << jumps << " horizon jumps; "
              << rounds << " NoI rounds, " << hits
              << " served from the resident-set cache\n";
    report.add_metric("sim_cycles_stepped", static_cast<double>(stepped));
    report.add_metric("sim_cycles_skipped", static_cast<double>(skipped));
    report.add_metric("sim_horizon_jumps", static_cast<double>(jumps));
    report.add_metric("sim_skip_fraction", skip_fraction);
    report.add_metric("noi_rounds", static_cast<double>(rounds));
    report.add_metric("noi_cache_hits", static_cast<double>(hits));
    bench::add_point_timing(report, point_seconds);

    std::cout << "\nShape: contiguity-preserving mappers hold the latency "
                 "tail flat deeper into the load sweep; the knee is where "
                 "queueing delay overwhelms the SLO budget.\n";

    report.add_table("sla_sweep", t);
    report.write(opt);
    return 0;
}
