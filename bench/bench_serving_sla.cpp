/// SLA study over the four compared NoI architectures: each serves the
/// identical open-loop multi-tenant request stream (Poisson arrivals, the
/// default interactive/batch tenants) at rising offered load, reporting
/// latency percentiles, throughput, utilization, queue depth, the
/// SLA-violation rate, and each architecture's SLA knee.
///
/// Thin main over the scenario registry ("serving" in src/scenario/);
/// positionals override the serve-grid spec:
///
///   positional: [max_requests per run] [replications]   (default 80, 2)

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"

namespace {

std::int64_t positional_int(const char* argv0, const std::string& value,
                            const char* what) {
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size() || parsed <= 0) {
        std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n",
                     argv0, what, value.c_str());
        std::exit(2);
    }
    return parsed;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::int64_t max_requests = 0;
    std::int64_t replications = 0;
    if (!opt.positional.empty())
        max_requests = positional_int(argv[0], opt.positional[0], "max_requests");
    if (opt.positional.size() > 1)
        replications = positional_int(argv[0], opt.positional[1], "replications");

    return bench::run_registered_scenario(
        "serving", opt, [&](scenario::SpecVariant& spec) {
            auto& grid = std::get<scenario::ServeGridSpec>(spec);
            if (max_requests > 0)
                grid.base.config.arrivals.max_requests = max_requests;
            if (replications > 0)
                grid.base.replications = static_cast<std::int32_t>(replications);
        });
}
