/// Serving capacity plan: the SLA knee as a function of cluster size and
/// batch cap. Every K x batch_cap cell serves the identical open-loop
/// multi-tenant stream (EDF-with-eviction admission, interactive/batch
/// tenants) at rising offered load, reporting latency percentiles, the
/// SLA-violation rate, throughput per fabric, and the knee load — the
/// first offered load whose violation rate crosses 5%. Batching and
/// scale-out both move the knee right; eviction keeps the interactive
/// tenant inside its deadline at the overload points (visible as nonzero
/// serve.preemptions).
///
/// Thin main over the scenario registry ("cluster" in src/scenario/);
/// positionals override the cluster spec:
///
///   positional: [max_requests per run] [replications]   (default 60, 2)

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"

namespace {

std::int64_t positional_int(const char* argv0, const std::string& value,
                            const char* what) {
    std::int64_t parsed = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc() || ptr != value.data() + value.size() || parsed <= 0) {
        std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n",
                     argv0, what, value.c_str());
        std::exit(2);
    }
    return parsed;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::int64_t max_requests = 0;
    std::int64_t replications = 0;
    if (!opt.positional.empty())
        max_requests = positional_int(argv[0], opt.positional[0], "max_requests");
    if (opt.positional.size() > 1)
        replications = positional_int(argv[0], opt.positional[1], "replications");

    return bench::run_registered_scenario(
        "cluster", opt, [&](scenario::SpecVariant& spec) {
            auto& cluster = std::get<scenario::ClusterSpec>(spec);
            if (max_requests > 0)
                cluster.base.config.arrivals.max_requests = max_requests;
            if (replications > 0)
                cluster.base.replications =
                    static_cast<std::int32_t>(replications);
        });
}
