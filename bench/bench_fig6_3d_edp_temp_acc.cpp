/// Fig. 6 reproduction: on the 100-PE 3D (5x5x4) system running DNN1-DNN5,
/// compare the Floret-enabled (performance-only) NoC mapping against the
/// joint performance-thermal optimized mapping on (a) EDP, (b) peak
/// temperature, and (c) inference accuracy under thermal noise.
/// Paper shape: Floret ~9% better EDP on average, but ~13 K hotter peaks
/// and up to 11% accuracy degradation; joint-opt stays accurate.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("fig6"), shared verbatim with the floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig6", opt);
}
