/// Fig. 6 reproduction: on the 100-PE 3D (5x5x4) system running DNN1-DNN5,
/// compare the Floret-enabled (performance-only) NoC mapping against the
/// joint performance-thermal optimized mapping on (a) EDP, (b) peak
/// temperature, and (c) inference accuracy under thermal noise.
/// Paper shape: Floret ~9% better EDP on average, but ~13 K hotter peaks
/// and up to 11% accuracy degradation; joint-opt stays accurate.

#include <iostream>

#include "bench/common.h"
#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/topo/mesh.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 6: 100-PE 3D NoC, perf-only (Floret) vs joint "
                 "perf-thermal mapping ===\n\n";

    const auto topo3d = topo::make_mesh3d(5, 5, 4);
    const auto routes = noc::RouteTable::build(topo3d, noc::RoutingPolicy::kShortestPath);
    thermal::ThermalConfig tcfg;
    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    core::MooConfig moo;
    moo.iterations = 1500;
    // The joint design targets the ReRAM-safe temperature (Section III):
    // a strong thermal weight makes it trade EDP for accuracy headroom.
    moo.w_thermal = 0.2;
    moo.t_target_k = 331.0;

    // Each DNN runs two simulated-annealing optimizations — by far the
    // heaviest per-item work of any bench, and a perfect engine fan-out.
    struct Pair {
        core::PlacementEval perf_only;
        core::PlacementEval joint;
    };
    bench::SweepEngine engine(opt.threads);
    const auto& t1 = workload::table1();
    const auto pairs = engine.map(5, [&](std::size_t i) {  // DNN1..DNN5 as in the paper
        const auto& w = t1[i];
        const auto net = dnn::build_model(w.model, w.dataset);
        const auto plan =
            pim::partition_by_params(net, w.paper_params_m, w.paper_params_m / 88.0);
        thermal::PowerParams pcfg;
        pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);
        Pair p;
        p.perf_only = core::optimize_perf_only(net, plan, routes, tcfg, pcfg, rcfg,
                                               acc, perf, moo)
                          .eval;
        p.joint =
            core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc, perf, moo)
                .eval;
        return p;
    });

    util::TextTable t({"DNN", "EDP gain of Floret", "Peak K (Floret)",
                       "Peak K (joint)", "Delta K", "Acc drop (Floret)",
                       "Acc drop (joint)"});
    double edp_gain_sum = 0.0;
    double delta_k_sum = 0.0;
    double worst_acc = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto& w = t1[i];
        const auto& p = pairs[i];
        const double edp_gain = 100.0 * (p.joint.edp - p.perf_only.edp) / p.joint.edp;
        const double dk = p.perf_only.peak_k - p.joint.peak_k;
        edp_gain_sum += edp_gain;
        delta_k_sum += dk;
        worst_acc = std::max(worst_acc, p.perf_only.accuracy_drop);
        t.add_row({w.id + " (" + w.model + ")",
                   util::TextTable::fmt(edp_gain, 1) + "%",
                   util::TextTable::fmt(p.perf_only.peak_k, 1),
                   util::TextTable::fmt(p.joint.peak_k, 1),
                   util::TextTable::fmt(dk, 1),
                   util::TextTable::fmt(100.0 * p.perf_only.accuracy_drop, 1) + "%",
                   util::TextTable::fmt(100.0 * p.joint.accuracy_drop, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nMeans: Floret EDP advantage "
              << util::TextTable::fmt(edp_gain_sum / 5.0, 1) << "% (paper ~9%), peak-T "
              << "excess " << util::TextTable::fmt(delta_k_sum / 5.0, 1)
              << " K (paper ~13 K), worst Floret accuracy drop "
              << util::TextTable::fmt(100.0 * worst_acc, 1) << "% (paper up to 11%).\n";

    bench::JsonReport report("fig6_3d_edp_temp_acc");
    report.add_table("comparison", t);
    report.add_metric("mean_edp_gain_pct", edp_gain_sum / 5.0);
    report.add_metric("mean_peak_excess_k", delta_k_sum / 5.0);
    report.add_metric("worst_accuracy_drop", worst_acc);
    return bench::finish(opt, report);
}
