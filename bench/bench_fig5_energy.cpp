/// Fig. 5 reproduction: NoI energy for the Table II mixes on the
/// 100-chiplet system, normalized to Floret. Energy prices every flit's
/// router traversal by the router radix and every link traversal by the
/// wire length. Paper shape: on average 1.65x lower than SIAM and 2.8x
/// lower than Kite.
///
/// Thin main over the scenario registry ("fig5" in src/scenario/); run
/// `floretsim_run --only fig3,fig5` to share the fabric cache with Fig. 3
/// instead of rebuilding the identical sweep.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("fig5", opt);
}
