/// Fig. 5 reproduction: NoI energy for the Table II mixes on the
/// 100-chiplet system, normalized to Floret. Energy prices every flit's
/// router traversal by the router radix and every link traversal by the
/// wire length. Paper shape: on average 1.65x lower than SIAM and 2.8x
/// lower than Kite.

#include <iostream>

#include "bench/common.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Fig. 5: NoI energy, 100 chiplets (normalized to Floret) ===\n\n";

    const auto cfg = bench::default_eval_config();
    std::vector<bench::BuiltArch> archs;
    for (const auto a : bench::kAllArchs)
        archs.push_back(bench::build_arch(a, 10, 10, 13, /*greedy_max_gap=*/2));

    util::TextTable t({"Mix", "Kite", "SIAM", "SWAP", "Floret", "Floret uJ"});
    double sum_kite = 0.0;
    double sum_siam = 0.0;
    double sum_swap = 0.0;
    for (const auto& mix : workload::table2()) {
        std::vector<double> energy;
        for (auto& b : archs) {
            const auto run = bench::run_mix_dynamic(b, mix, cfg);
            energy.push_back(run.total_energy_pj);
        }
        const double floret = energy[3];
        sum_kite += energy[0] / floret;
        sum_siam += energy[1] / floret;
        sum_swap += energy[2] / floret;
        t.add_row({mix.name, util::TextTable::fmt(energy[0] / floret),
                   util::TextTable::fmt(energy[1] / floret),
                   util::TextTable::fmt(energy[2] / floret), "1.00",
                   util::TextTable::fmt(floret / 1e6, 2)});
    }
    t.print(std::cout);
    const double n = static_cast<double>(workload::table2().size());
    std::cout << "\nMean energy vs Floret:  Kite " << util::TextTable::fmt(sum_kite / n)
              << "x  SIAM " << util::TextTable::fmt(sum_siam / n) << "x  SWAP "
              << util::TextTable::fmt(sum_swap / n)
              << "x   (paper: Kite 2.8x, SIAM 1.65x)\n";
    return 0;
}
