/// Fig. 5 reproduction: NoI energy for the Table II mixes on the
/// 100-chiplet system, normalized to Floret. Energy prices every flit's
/// router traversal by the router radix and every link traversal by the
/// wire length. Paper shape: on average 1.65x lower than SIAM and 2.8x
/// lower than Kite.

#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Fig. 5: NoI energy, 100 chiplets (normalized to Floret) ===\n\n";

    bench::SweepSpec spec;
    spec.archs.assign(bench::kAllArchs.begin(), bench::kAllArchs.end());
    spec.mixes = workload::table2();
    spec.evals = {bench::default_eval_config()};
    spec.greedy_max_gap = 2;
    spec.run_seed = opt.seed_or(spec.run_seed);

    bench::SweepEngine engine(opt.threads);
    const auto sweep = engine.run(spec);

    util::TextTable t({"Mix", "Kite", "SIAM", "SWAP", "Floret", "Floret uJ"});
    double sum_kite = 0.0;
    double sum_siam = 0.0;
    double sum_swap = 0.0;
    for (std::size_t m = 0; m < spec.mixes.size(); ++m) {
        std::vector<double> energy;
        for (std::size_t a = 0; a < spec.archs.size(); ++a)
            energy.push_back(sweep.at(a, 0, m).result.total_energy_pj);
        const double floret = energy[3];
        sum_kite += energy[0] / floret;
        sum_siam += energy[1] / floret;
        sum_swap += energy[2] / floret;
        t.add_row({spec.mixes[m].name, util::TextTable::fmt(energy[0] / floret),
                   util::TextTable::fmt(energy[1] / floret),
                   util::TextTable::fmt(energy[2] / floret), "1.00",
                   util::TextTable::fmt(floret / 1e6, 2)});
    }
    t.print(std::cout);
    const double n = static_cast<double>(spec.mixes.size());
    std::cout << "\nMean energy vs Floret:  Kite " << util::TextTable::fmt(sum_kite / n)
              << "x  SIAM " << util::TextTable::fmt(sum_siam / n) << "x  SWAP "
              << util::TextTable::fmt(sum_swap / n)
              << "x   (paper: Kite 2.8x, SIAM 1.65x)\n"
              << "Sweep: " << sweep.rows.size() << " points on "
              << engine.thread_count() << " thread(s) in "
              << util::TextTable::fmt(sweep.wall_seconds, 2) << " s\n";

    bench::JsonReport report("fig5_energy");
    report.add_table("energy_normalized", t);
    report.add_metric("mean_kite_over_floret", sum_kite / n);
    report.add_metric("mean_siam_over_floret", sum_siam / n);
    report.add_metric("mean_swap_over_floret", sum_swap / n);
    report.add_metric("sweep_wall_seconds", sweep.wall_seconds);
    bench::add_point_timing(report, sweep);
    report.write(opt);
    return 0;
}
