/// Section I study: the paper argues monolithic 3D (M3D) integration
/// outperforms TSV-based 3D because nano-scale inter-tier vias shorten
/// effective wire length and the thin inter-layer dielectric conducts
/// heat better, reducing hotspots. We model both variants of the 100-PE
/// stack — TSV (thick bonding layer: longer vertical wires, weaker
/// vertical thermal conductance) vs M3D (MIVs: near-zero vertical wire,
/// strong conductance) — and compare EDP and peak temperature for the
/// Fig. 6 workloads under the same joint-optimized mapping flow.

#include <iostream>

#include "bench/common.h"
#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/topo/mesh.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== M3D vs TSV 3D integration (100 PEs, joint-optimized) ===\n\n";

    struct Variant {
        const char* name;
        double tier_pitch_mm;   // vertical wire length
        double g_vertical;      // inter-tier thermal conductance (W/K)
    };
    const std::array<Variant, 2> variants{{
        {"TSV", 0.30, 0.25},  // micro-bump + bond layer
        {"M3D", 0.02, 0.80},  // nano-MIV through thin ILD
    }};

    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;
    core::MooConfig moo;
    moo.iterations = 1200;
    moo.w_thermal = 0.2;
    moo.t_target_k = 331.0;

    // 3 DNNs x 2 integration variants, each a full joint optimization —
    // six independent heavy points for the engine.
    bench::SweepEngine engine(opt.threads);
    const auto& t1 = workload::table1();
    const auto evals =
        engine.map(3 * variants.size(), [&](std::size_t i) {  // DNN1..DNN3 for brevity
            const auto& w = t1[i / variants.size()];
            const auto& v = variants[i % variants.size()];
            const auto net = dnn::build_model(w.model, w.dataset);
            const auto plan = pim::partition_by_params(net, w.paper_params_m,
                                                       w.paper_params_m / 88.0);
            const auto topo3d = topo::make_mesh3d(5, 5, 4, 1.0, v.tier_pitch_mm);
            const auto routes = noc::RouteTable::build(topo3d, noc::RoutingPolicy::kXY);
            thermal::ThermalConfig tcfg;
            tcfg.g_vertical_w_per_k = v.g_vertical;
            thermal::PowerParams pcfg;
            pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);
            return core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc, perf,
                                        moo)
                .eval;
        });

    util::TextTable t({"DNN", "Variant", "EDP (norm)", "Peak K", "Acc drop"});
    for (std::size_t d = 0; d < 3; ++d) {
        const auto& w = t1[d];
        const double edp_tsv = evals[d * variants.size()].edp;  // TSV is first
        for (std::size_t v = 0; v < variants.size(); ++v) {
            const auto& res = evals[d * variants.size() + v];
            t.add_row({w.id + " (" + w.model + ")", variants[v].name,
                       util::TextTable::fmt(res.edp / edp_tsv),
                       util::TextTable::fmt(res.peak_k, 1),
                       util::TextTable::fmt(100.0 * res.accuracy_drop, 1) + "%"});
        }
    }
    t.print(std::cout);
    std::cout << "\nPaper (Section I): M3D's MIVs and thin ILD give better "
                 "performance/energy and fewer thermal hotspots than TSV 3D.\n";

    bench::JsonReport report("m3d_vs_tsv");
    report.add_table("comparison", t);
    return bench::finish(opt, report);
}
