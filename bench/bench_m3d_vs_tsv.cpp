/// Section I study: the paper argues monolithic 3D (M3D) integration
/// outperforms TSV-based 3D because nano-scale inter-tier vias shorten
/// effective wire length and the thin inter-layer dielectric conducts
/// heat better, reducing hotspots. We model both variants of the 100-PE
/// stack — TSV (thick bonding layer: longer vertical wires, weaker
/// vertical thermal conductance) vs M3D (MIVs: near-zero vertical wire,
/// strong conductance) — and compare EDP and peak temperature for the
/// Fig. 6 workloads under the same joint-optimized mapping flow.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("m3d_vs_tsv"), shared verbatim with the floretsim_run
/// driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("m3d_vs_tsv", opt);
}
