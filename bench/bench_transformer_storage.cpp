/// Section IV claim: Transformer attention produces intermediate matrices
/// whose storage rivals (and with batching dwarfs) the weight storage —
/// BERT-Base up to 8.98x, BERT-Tiny 2.06x of the weight matrices — which
/// rules out write-limited NVM crossbars for the dynamic kernels. We sweep
/// the batch size and report where the paper's figures land, plus the
/// static/dynamic kernel split the heterogeneous mapping relies on.

#include <iostream>

#include "bench/common.h"
#include "src/dnn/transformer.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Transformer intermediate-vs-weight storage (Section IV) ===\n\n";

    util::TextTable t({"Model", "Batch", "Weights (M)", "Intermediates (M)",
                       "Ratio"});
    for (auto cfg : {dnn::bert_base(), dnn::bert_tiny()}) {
        for (const std::int32_t batch : {1, 2, 4, 6, 8}) {
            cfg.batch = batch;
            const auto s = dnn::analyze_storage(cfg);
            t.add_row({cfg.name, std::to_string(batch),
                       util::TextTable::fmt(static_cast<double>(s.weight_params) / 1e6, 1),
                       util::TextTable::fmt(static_cast<double>(s.intermediate_elems) / 1e6, 1),
                       util::TextTable::fmt(s.intermediate_over_weights()) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\nPaper: BERT-Base 8.98x (lands near batch 6 here), BERT-Tiny "
                 "2.06x (near batch 2).\n\n";

    std::cout << "Kernel classes per encoder (heterogeneous mapping input):\n";
    util::TextTable k({"Kernel", "Class", "Weights", "GMACs (batch 1)"});
    const auto walk = dnn::kernel_walk(dnn::bert_base());
    for (std::size_t i = 0; i < 7; ++i) {
        const auto& kn = walk[i];
        const char* cls = kn.cls == dnn::KernelClass::kStaticWeight ? "static (PIM)"
                          : kn.cls == dnn::KernelClass::kDynamicMatrix
                              ? "dynamic (no NVM)"
                              : "elementwise";
        k.add_row({kn.name, cls, std::to_string(kn.weight_params),
                   util::TextTable::fmt(static_cast<double>(kn.work_macs) / 1e9, 2)});
    }
    k.print(std::cout);

    bench::JsonReport report("transformer_storage");
    report.add_table("storage", t);
    report.add_table("kernels", k);
    return bench::finish(opt, report);
}
