/// Section IV claim: Transformer attention produces intermediate matrices
/// whose storage rivals (and with batching dwarfs) the weight storage —
/// BERT-Base up to 8.98x, BERT-Tiny 2.06x of the weight matrices — which
/// rules out write-limited NVM crossbars for the dynamic kernels. We sweep
/// the batch size and report where the paper's figures land, plus the
/// static/dynamic kernel split the heterogeneous mapping relies on.
///
/// Thin main over the scenario registry: the spec and report live in
/// src/scenario/ ("transformer_storage"), shared verbatim with the
/// floretsim_run driver.

#include "bench/common.h"

int main(int argc, char** argv) {
    const auto opt = floretsim::bench::Options::parse(argc, argv);
    return floretsim::bench::run_registered_scenario("transformer_storage", opt);
}
