/// Section II claim: in ResNet34 the linear (consecutive-layer)
/// activations are ~4.5x the skip-connection activations, i.e. skips are
/// ~19% of the total traffic of a single pass. Reports the breakdown for
/// every residual/dense model in Table I — then drains the skip-heaviest
/// model's mapped traffic through the wormhole simulator twice, once per
/// SimCore, as a reference-vs-event-horizon A/B: identical drain, far
/// fewer executed cycles.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "src/dnn/model_zoo.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Skip vs linear activation traffic (one inference pass) ===\n\n";

    const std::vector<const char*> models{"ResNet18", "ResNet34", "ResNet50",
                                          "ResNet101", "ResNet152", "DenseNet169",
                                          "VGG19"};
    struct Row {
        double total = 0.0;
        double skip = 0.0;
    };
    bench::SweepEngine engine(opt.threads);
    const auto rows = engine.map(models.size(), [&](std::size_t i) {
        const auto net = dnn::build_model(models[i], dnn::Dataset::kImageNet);
        return Row{static_cast<double>(net.total_edge_activations()),
                   static_cast<double>(net.skip_edge_activations())};
    });

    util::TextTable t({"Model", "Total acts (M)", "Skip acts (M)", "Skip share",
                       "Linear/skip"});
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto& r = rows[i];
        t.add_row({models[i], util::TextTable::fmt(r.total / 1e6, 1),
                   util::TextTable::fmt(r.skip / 1e6, 1),
                   util::TextTable::fmt(100.0 * r.skip / r.total, 1) + "%",
                   r.skip > 0 ? util::TextTable::fmt((r.total - r.skip) / r.skip) + "x"
                              : "-"});
    }
    t.print(std::cout);
    std::cout << "\nPaper (ResNet34): linear ~4.5x skip; skip ~19% of total.\n";

    bench::JsonReport report("skip_traffic");
    report.add_table("skip_traffic", t);

    // --- Simulator-core A/B on this traffic: DNN2 (ResNet34/ImageNet, the
    // paper's headline residual workload) mapped onto the Floret fabric and
    // drained through the wormhole simulator with the reference cycle loop
    // vs. the credit-aware event-horizon core. The SimResult is
    // bit-identical by construction (the differential suite enforces it);
    // what differs is how many cycles each core actually executed.
    std::cout << "\n=== Wormhole drain: reference vs event-horizon core ===\n\n";
    if (const char* forced = std::getenv("FLORETSIM_SIM_CORE");
        forced != nullptr && *forced != '\0') {
        // The override wins over per-run configs, so both rows below run
        // the same core and the A/B is vacuous — say so instead of
        // reporting mislabeled numbers.
        std::cout << "note: FLORETSIM_SIM_CORE=" << forced
                  << " overrides both rows; this A/B compares the forced "
                     "core against itself.\n\n";
    }
    auto arch = bench::build_arch(bench::Arch::kFloret, 10, 10);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN2"};
    const auto tasks = core::make_tasks(ids, bench::kParamsPerChipletM, owner);
    const auto mapped = arch.mapper->map_queue(tasks, nullptr);
    core::EvalConfig eval = bench::default_eval_config();

    util::TextTable sim_t({"Core", "Drain (kcyc)", "Stepped", "Skipped",
                           "Jumps", "Wall (ms)"});
    double drain_ref = 0.0, drain_eh = 0.0;
    for (const auto core_kind :
         {noc::SimCore::kReference, noc::SimCore::kEventHorizon}) {
        eval.sim.core = core_kind;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r =
            core::evaluate_noi(arch.topology(), arch.routes(), mapped, eval);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        const std::string prefix = noc::sim_core_name(core_kind);
        sim_t.add_row({prefix, util::TextTable::fmt(r.latency_cycles / 1e3, 1),
                       std::to_string(r.sim_cycles_stepped),
                       std::to_string(r.sim_cycles_skipped),
                       std::to_string(r.sim_horizon_jumps),
                       util::TextTable::fmt(ms, 2)});
        report.add_metric(prefix + "_drain_cycles", r.latency_cycles);
        report.add_metric(prefix + "_cycles_stepped",
                          static_cast<double>(r.sim_cycles_stepped));
        report.add_metric(prefix + "_cycles_skipped",
                          static_cast<double>(r.sim_cycles_skipped));
        report.add_metric(prefix + "_horizon_jumps",
                          static_cast<double>(r.sim_horizon_jumps));
        (core_kind == noc::SimCore::kReference ? drain_ref : drain_eh) =
            r.latency_cycles;
    }
    sim_t.print(std::cout);
    std::cout << (drain_ref == drain_eh
                      ? "\nDrain cycles agree across cores.\n"
                      : "\nERROR: cores disagree on the drain makespan!\n");
    report.add_table("sim_core_ab", sim_t);
    report.add_metric("cores_agree", drain_ref == drain_eh ? 1.0 : 0.0);

    report.write(opt.json_path);
    return drain_ref == drain_eh ? 0 : 1;
}
