/// Section II claim: in ResNet34 the linear (consecutive-layer)
/// activations are ~4.5x the skip-connection activations, i.e. skips are
/// ~19% of the total traffic of a single pass. Reports the breakdown for
/// every residual/dense model in Table I.

#include <iostream>

#include "bench/common.h"
#include "src/dnn/model_zoo.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Skip vs linear activation traffic (one inference pass) ===\n\n";

    const std::vector<const char*> models{"ResNet18", "ResNet34", "ResNet50",
                                          "ResNet101", "ResNet152", "DenseNet169",
                                          "VGG19"};
    struct Row {
        double total = 0.0;
        double skip = 0.0;
    };
    bench::SweepEngine engine(opt.threads);
    const auto rows = engine.map(models.size(), [&](std::size_t i) {
        const auto net = dnn::build_model(models[i], dnn::Dataset::kImageNet);
        return Row{static_cast<double>(net.total_edge_activations()),
                   static_cast<double>(net.skip_edge_activations())};
    });

    util::TextTable t({"Model", "Total acts (M)", "Skip acts (M)", "Skip share",
                       "Linear/skip"});
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto& r = rows[i];
        t.add_row({models[i], util::TextTable::fmt(r.total / 1e6, 1),
                   util::TextTable::fmt(r.skip / 1e6, 1),
                   util::TextTable::fmt(100.0 * r.skip / r.total, 1) + "%",
                   r.skip > 0 ? util::TextTable::fmt((r.total - r.skip) / r.skip) + "x"
                              : "-"});
    }
    t.print(std::cout);
    std::cout << "\nPaper (ResNet34): linear ~4.5x skip; skip ~19% of total.\n";

    bench::JsonReport report("skip_traffic");
    report.add_table("skip_traffic", t);
    report.write(opt);
    return 0;
}
