/// Section II claim: in ResNet34 the linear (consecutive-layer)
/// activations are ~4.5x the skip-connection activations, i.e. skips are
/// ~19% of the total traffic of a single pass. Reports the breakdown for
/// every residual/dense model in Table I.

#include <iostream>

#include "src/dnn/model_zoo.h"
#include "src/util/table.h"

int main() {
    using namespace floretsim;
    std::cout << "=== Skip vs linear activation traffic (one inference pass) ===\n\n";

    util::TextTable t({"Model", "Total acts (M)", "Skip acts (M)", "Skip share",
                       "Linear/skip"});
    for (const char* name : {"ResNet18", "ResNet34", "ResNet50", "ResNet101",
                             "ResNet152", "DenseNet169", "VGG19"}) {
        const auto net = dnn::build_model(name, dnn::Dataset::kImageNet);
        const double total = static_cast<double>(net.total_edge_activations());
        const double skip = static_cast<double>(net.skip_edge_activations());
        t.add_row({name, util::TextTable::fmt(total / 1e6, 1),
                   util::TextTable::fmt(skip / 1e6, 1),
                   util::TextTable::fmt(100.0 * skip / total, 1) + "%",
                   skip > 0 ? util::TextTable::fmt((total - skip) / skip) + "x" : "-"});
    }
    t.print(std::cout);
    std::cout << "\nPaper (ResNet34): linear ~4.5x skip; skip ~19% of total.\n";
    return 0;
}
