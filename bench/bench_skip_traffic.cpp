/// Section II claim: in ResNet34 the linear (consecutive-layer)
/// activations are ~4.5x the skip-connection activations, i.e. skips are
/// ~19% of the total traffic of a single pass. Reports the breakdown for
/// every residual/dense model in Table I — then runs two simulator-core
/// A/Bs across reference, event-horizon and regional:
///
///   1. the skip-heaviest model's mapped traffic drained through the
///      Floret fabric (the paper's workload, mixed traffic everywhere);
///   2. a saturated corner drain — a handful of sources flooding one sink
///      while the rest of a 10x10 mesh sits idle. Every cycle moves a flit
///      somewhere near the sink, so the global quiet proof never fires and
///      the event-horizon core degenerates to cycle stepping; the regional
///      core keeps the hot tile stepping and leaps everyone else.
///
/// Results must agree bit-for-bit across cores (checked in-binary; nonzero
/// exit on disagreement) — only the engine-work statistics may differ.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench/common.h"
#include "src/dnn/model_zoo.h"
#include "src/noc/routing.h"
#include "src/noc/simulator.h"
#include "src/topo/mesh.h"

namespace {
using namespace floretsim;

constexpr noc::SimCore kCores[] = {noc::SimCore::kReference,
                                   noc::SimCore::kEventHorizon,
                                   noc::SimCore::kRegional};

/// FNV-1a over the semantic SimResult fields (everything the differential
/// contract covers; engine-work statistics excluded), folded to 32 bits so
/// it survives the JSON round trip as an exact double.
std::uint32_t result_hash(const noc::SimResult& r) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (8 * b)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    const auto mixd = [&mix](double d) {
        std::uint64_t v = 0;
        std::memcpy(&v, &d, sizeof v);
        mix(v);
    };
    mix(static_cast<std::uint64_t>(r.cycles));
    mix(static_cast<std::uint64_t>(r.packets));
    mix(static_cast<std::uint64_t>(r.flits));
    mix(static_cast<std::uint64_t>(r.flit_hops));
    mix(r.completed ? 1 : 0);
    mix(static_cast<std::uint64_t>(r.packet_latency.count()));
    mixd(r.packet_latency.mean());
    mixd(r.packet_latency.variance());
    mixd(r.packet_latency.min());
    mixd(r.packet_latency.max());
    for (const auto v : r.router_flits) mix(static_cast<std::uint64_t>(v));
    for (const auto v : r.link_flits) mix(static_cast<std::uint64_t>(v));
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Skip vs linear activation traffic (one inference pass) ===\n\n";

    const std::vector<const char*> models{"ResNet18", "ResNet34", "ResNet50",
                                          "ResNet101", "ResNet152", "DenseNet169",
                                          "VGG19"};
    struct Row {
        double total = 0.0;
        double skip = 0.0;
    };
    bench::SweepEngine engine(opt.threads);
    const auto rows = engine.map(models.size(), [&](std::size_t i) {
        const auto net = dnn::build_model(models[i], dnn::Dataset::kImageNet);
        return Row{static_cast<double>(net.total_edge_activations()),
                   static_cast<double>(net.skip_edge_activations())};
    });

    util::TextTable t({"Model", "Total acts (M)", "Skip acts (M)", "Skip share",
                       "Linear/skip"});
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto& r = rows[i];
        t.add_row({models[i], util::TextTable::fmt(r.total / 1e6, 1),
                   util::TextTable::fmt(r.skip / 1e6, 1),
                   util::TextTable::fmt(100.0 * r.skip / r.total, 1) + "%",
                   r.skip > 0 ? util::TextTable::fmt((r.total - r.skip) / r.skip) + "x"
                              : "-"});
    }
    t.print(std::cout);
    std::cout << "\nPaper (ResNet34): linear ~4.5x skip; skip ~19% of total.\n";

    bench::JsonReport report("skip_traffic");
    report.add_table("skip_traffic", t);

    if (const char* forced = std::getenv("FLORETSIM_SIM_CORE");
        forced != nullptr && *forced != '\0') {
        // The override wins over per-run configs, so every row below runs
        // the same core and the A/Bs are vacuous — say so instead of
        // reporting mislabeled numbers.
        std::cout << "\nnote: FLORETSIM_SIM_CORE=" << forced
                  << " overrides every row; these A/Bs compare the forced "
                     "core against itself.\n";
    }

    bool all_agree = true;

    // --- A/B 1: DNN2 (ResNet34/ImageNet, the paper's headline residual
    // workload) mapped onto the Floret fabric and drained through the
    // wormhole simulator, once per core. The SimResult is bit-identical by
    // construction (the differential suite enforces it); what differs is
    // how many cycles each core actually executed.
    std::cout << "\n=== Wormhole drain: mapped DNN2 on Floret, per core ===\n\n";
    auto arch = bench::build_arch(bench::Arch::kFloret, 10, 10);
    std::vector<std::unique_ptr<dnn::Network>> owner;
    const std::vector<std::string> ids{"DNN2"};
    const auto tasks = core::make_tasks(ids, bench::kParamsPerChipletM, owner);
    const auto mapped = arch.mapper->map_queue(tasks, nullptr);
    core::EvalConfig eval = bench::default_eval_config();

    util::TextTable sim_t({"Core", "Drain (kcyc)", "Stepped", "Skipped", "Jumps",
                           "Rg skipped", "Wall (ms)"});
    double mapped_cycles_ref = -1.0;
    for (const auto core_kind : kCores) {
        eval.sim.core = core_kind;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r =
            core::evaluate_noi(arch.topology(), arch.routes(), mapped, eval);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        const std::string prefix = noc::sim_core_name(core_kind);
        sim_t.add_row({prefix, util::TextTable::fmt(r.latency_cycles / 1e3, 1),
                       std::to_string(r.sim_cycles_stepped),
                       std::to_string(r.sim_cycles_skipped),
                       std::to_string(r.sim_horizon_jumps),
                       std::to_string(r.sim_region_cycles_skipped),
                       util::TextTable::fmt(ms, 2)});
        report.add_metric(prefix + "_drain_cycles", r.latency_cycles);
        report.add_metric(prefix + "_cycles_stepped",
                          static_cast<double>(r.sim_cycles_stepped));
        report.add_metric(prefix + "_cycles_skipped",
                          static_cast<double>(r.sim_cycles_skipped));
        report.add_metric(prefix + "_horizon_jumps",
                          static_cast<double>(r.sim_horizon_jumps));
        report.add_metric(prefix + "_region_cycles_skipped",
                          static_cast<double>(r.sim_region_cycles_skipped));
        report.add_metric(prefix + "_wall_seconds", ms / 1e3);
        if (core_kind == noc::SimCore::kReference)
            mapped_cycles_ref = r.latency_cycles;
        else if (r.latency_cycles != mapped_cycles_ref)
            all_agree = false;
    }
    sim_t.print(std::cout);
    report.add_table("sim_core_ab", sim_t);

    // --- A/B 2: saturated corner drain. Five sources flood node 0 of a
    // 10x10 mesh with 64 KiB each while the other 94 nodes are silent. The
    // sink ejects every cycle, so the fabric is never globally quiet: the
    // event-horizon core must cycle-step essentially the whole drain. The
    // regional core's hot tile steps every cycle too — but the idle tiles
    // prove local fixed points and leap, which is the entire point of
    // per-region clocks.
    std::cout << "\n=== Wormhole drain: saturated corner sink, per core ===\n\n";
    const auto mesh = topo::make_mesh(10, 10);
    const auto mesh_rt =
        noc::RouteTable::build(mesh, noc::RoutingPolicy::kShortestPath);
    noc::SimConfig drain_cfg;
    drain_cfg.injection_rate = 8.0;  // saturating: packets queue at sources
    drain_cfg.input_buffer_flits = 2;
    drain_cfg.max_cycles = 2'000'000;
    std::vector<noc::Demand> drain_demands;
    for (const topo::NodeId src : {1, 2, 10, 11, 20})
        drain_demands.push_back({src, 0, 64 * 1024});

    util::TextTable drain_t({"Core", "Drain (kcyc)", "Stepped", "Skipped",
                             "Jumps", "Rg stepped", "Rg skipped", "Rg jumps",
                             "Hash", "Wall (ms)"});
    noc::SimResult drain_ref;
    for (const auto core_kind : kCores) {
        noc::SimConfig cfg = drain_cfg;
        cfg.core = core_kind;
        noc::Simulator sim(mesh, mesh_rt, cfg);
        sim.add_demands(drain_demands);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = sim.run();
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        const std::uint32_t hash = result_hash(r);
        const std::string prefix =
            std::string("drain_") + noc::sim_core_name(core_kind);
        drain_t.add_row(
            {noc::sim_core_name(core_kind),
             util::TextTable::fmt(r.cycles / 1e3, 1),
             std::to_string(r.cycles_stepped), std::to_string(r.cycles_skipped),
             std::to_string(r.horizon_jumps),
             std::to_string(r.region_cycles_stepped),
             std::to_string(r.region_cycles_skipped),
             std::to_string(r.region_horizon_jumps),
             util::TextTable::fmt(static_cast<double>(hash), 0),
             util::TextTable::fmt(ms, 2)});
        report.add_metric(prefix + "_cycles", static_cast<double>(r.cycles));
        report.add_metric(prefix + "_cycles_stepped",
                          static_cast<double>(r.cycles_stepped));
        report.add_metric(prefix + "_cycles_skipped",
                          static_cast<double>(r.cycles_skipped));
        report.add_metric(prefix + "_horizon_jumps",
                          static_cast<double>(r.horizon_jumps));
        report.add_metric(prefix + "_regions", static_cast<double>(r.regions));
        report.add_metric(prefix + "_region_cycles_stepped",
                          static_cast<double>(r.region_cycles_stepped));
        report.add_metric(prefix + "_region_cycles_skipped",
                          static_cast<double>(r.region_cycles_skipped));
        report.add_metric(prefix + "_region_horizon_jumps",
                          static_cast<double>(r.region_horizon_jumps));
        report.add_metric(prefix + "_region_stepped_max",
                          static_cast<double>(r.region_stepped_max));
        report.add_metric(prefix + "_region_stepped_min",
                          static_cast<double>(r.region_stepped_min));
        report.add_metric(prefix + "_result_hash", static_cast<double>(hash));
        report.add_metric(prefix + "_wall_seconds", ms / 1e3);
        if (core_kind == noc::SimCore::kReference)
            drain_ref = r;
        else if (result_hash(drain_ref) != hash)
            all_agree = false;
    }
    drain_t.print(std::cout);
    std::cout << (all_agree ? "\nAll cores agree on every drain result.\n"
                            : "\nERROR: cores disagree on a drain result!\n");
    report.add_table("drain_core_ab", drain_t);
    report.add_metric("cores_agree", all_agree ? 1.0 : 0.0);

    const int write_rc = bench::finish(opt, report);
    return all_agree ? write_rc : 1;
}
