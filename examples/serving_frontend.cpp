/// Serving-layer walkthrough: an open-loop, multi-tenant request stream
/// served by a Floret fabric. Shows the three-step API — describe the
/// traffic (serve::ArrivalConfig + RequestClass tenants), pick an
/// admission policy, run serve_requests / run_replications — and how the
/// admission policy shifts the latency tail at identical offered load.

#include <array>
#include <iostream>
#include <string>

#include "bench/common.h"
#include "src/serve/sweep.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    std::cout << "=== Request-level serving on a 10x10 Floret fabric ===\n\n";

    // 1. Traffic: two tenants (interactive CIFAR models on a tight SLO,
    //    batch ImageNet models on a loose one), bursty MMPP arrivals.
    serve::ServeConfig cfg = serve::default_serve_config();
    cfg.arrivals.process = serve::ArrivalProcess::kMmpp;
    cfg.arrivals.rate_per_mcycle = 800.0;  // past the fabric's SLA knee
    cfg.arrivals.max_requests = 100;
    cfg.seed = opt.seed_or(7);

    // 2. Admission policies to compare at this load.
    const std::array<serve::AdmissionPolicy, 3> policies{
        serve::AdmissionPolicy::kFifo, serve::AdmissionPolicy::kEarliestDeadline,
        serve::AdmissionPolicy::kRejectOnFull};

    bench::SweepEngine engine(opt.threads);
    util::TextTable t({"Policy", "Completed", "Rejected", "p50 (kcyc)",
                       "p95 (kcyc)", "p99 (kcyc)", "SLA viol", "Util"});
    for (const auto policy : policies) {
        serve::ServeConfig run_cfg = cfg;
        run_cfg.admission = policy;
        run_cfg.max_queue = 12;
        auto arch = bench::build_arch(engine.cache(), bench::Arch::kFloret, 10, 10);
        const auto s = serve::serve_requests(arch, run_cfg);
        t.add_row({serve::admission_policy_name(policy),
                   std::to_string(s.completed), std::to_string(s.rejected),
                   util::TextTable::fmt(s.p50_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(s.p95_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(s.p99_latency_cycles / 1e3, 1),
                   util::TextTable::fmt(100.0 * s.sla_violation_rate(), 1) + "%",
                   util::TextTable::fmt(100.0 * s.mean_utilization, 1) + "%"});
    }
    t.print(std::cout);

    // 3. Replications on the SweepEngine: same scenario, independent
    //    seeds, fanned out across worker threads (bit-identical to serial).
    serve::ServeSpec spec;
    spec.config = cfg;
    spec.replications = 4;
    spec.base_seed = cfg.seed;
    const auto runs = serve::run_replications(engine, spec);
    const auto agg = serve::aggregate(runs);
    std::cout << "\n" << spec.replications << " replications (FIFO): mean p95 "
              << util::TextTable::fmt(agg.p95_latency_cycles / 1e3, 1)
              << " kcyc, SLA violation rate "
              << util::TextTable::fmt(100.0 * agg.sla_violation_rate(), 1)
              << "%, throughput "
              << util::TextTable::fmt(agg.mean_throughput_per_mcycle, 1)
              << " req/Mcyc\n";
    return 0;
}
