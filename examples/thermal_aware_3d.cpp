/// Section III scenario: a DNN mapped on a 100-PE 3D-stacked ReRAM system.
/// Shows the performance-only (Floret SFC) placement versus the joint
/// performance-thermal optimization: EDP, peak temperature, the bottom-tier
/// heat map, and the resulting inference accuracy under thermal noise.
///
///   $ ./examples/thermal_aware_3d [model] [params_M]   (default ResNet34 36.5)

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/moo.h"
#include "src/dnn/model_zoo.h"
#include "src/pim/partitioner.h"
#include "src/thermal/power.h"
#include "src/topo/mesh.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const std::string model = argc > 1 ? argv[1] : "ResNet34";
    const double params_m = argc > 2 ? std::atof(argv[2]) : 36.5;

    const auto net = dnn::build_model(model, dnn::Dataset::kImageNet);
    const auto topo3d = topo::make_mesh3d(5, 5, 4);
    const auto routes = noc::RouteTable::build(topo3d, noc::RoutingPolicy::kShortestPath);

    thermal::ThermalConfig tcfg;
    pim::ReramConfig rcfg;
    pim::ThermalAccuracyModel acc;
    core::PerfParams perf;

    const auto plan = pim::partition_by_params(net, params_m, params_m / 88.0);
    thermal::PowerParams pcfg;
    pcfg.inference_period_ns = pim::pipeline_period_ns(net, plan, rcfg);

    core::MooConfig moo;
    moo.iterations = 1500;
    moo.w_thermal = 0.2;
    moo.t_target_k = 331.0;

    std::cout << "=== " << model << " (" << params_m << "M params) on 5x5x4 PEs ===\n"
              << "pipeline period " << pcfg.inference_period_ns / 1e3 << " us\n\n";

    const auto perf_only =
        core::optimize_perf_only(net, plan, routes, tcfg, pcfg, rcfg, acc, perf, moo);
    const auto joint =
        core::optimize_joint(net, plan, routes, tcfg, pcfg, rcfg, acc, perf, moo);

    auto report = [&](const char* name, const core::MooResult& r) {
        const auto assign = pim::assign_layers(net, plan, r.pe_order);
        const auto power = thermal::pe_power_map(net, assign, tcfg.cells(), pcfg);
        const auto tr = thermal::solve_steady_state(tcfg, power);
        std::cout << "--- " << name << " ---\n"
                  << "EDP " << r.eval.edp << "  peak " << r.eval.peak_k
                  << " K  accuracy drop " << 100.0 * r.eval.accuracy_drop << "%\n"
                  << "bottom tier (farthest from sink):\n"
                  << thermal::render_tier(tr, 0) << '\n';
    };
    report("performance-only (Floret 3D)", perf_only);
    report("joint performance-thermal", joint);

    std::cout << "Joint optimization moves the power-hungry early layers toward\n"
                 "the heat sink, keeping the ReRAM conductance window open at a\n"
                 "small EDP cost (Figs. 6-7 of the paper).\n";
    return 0;
}
