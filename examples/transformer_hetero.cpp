/// Section IV scenario: end-to-end Transformer acceleration needs a
/// heterogeneous system — the static feed-forward/projection weights live
/// on the ReRAM SFC macro, while the dynamically rewritten attention
/// matrices (score MVMs) are unsuitable for NVM crossbars (write
/// endurance, 8.98x intermediate storage for BERT-Base) and go to
/// SRAM/tensor modules. This example walks a BERT encoder stack, splits
/// the kernels by class, sizes the SFC macro, and reports the resulting
/// storage and traffic budget.
///
///   $ ./examples/transformer_hetero [base|tiny] [batch]   (default base 6)

#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/hetero.h"
#include "src/core/sfc.h"
#include "src/dnn/transformer.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const std::string which = argc > 1 ? argv[1] : "base";
    auto cfg = which == "tiny" ? dnn::bert_tiny() : dnn::bert_base();
    cfg.batch = argc > 2 ? std::atoi(argv[2]) : 6;

    const auto storage = dnn::analyze_storage(cfg);
    std::cout << "=== " << cfg.name << " (batch " << cfg.batch << ", seq "
              << cfg.seq_len << ") ===\n"
              << "encoder weights:      " << storage.weight_params / 1e6 << " M\n"
              << "embeddings:           " << storage.embedding_params / 1e6 << " M\n"
              << "intermediate matrices: " << storage.intermediate_elems / 1e6
              << " M elems = " << storage.intermediate_over_weights()
              << "x the weight storage (paper: 8.98x Base / 2.06x Tiny)\n\n";

    // Split the kernel walk by hardware class.
    std::int64_t static_weights = 0;
    std::int64_t static_macs = 0;
    std::int64_t dynamic_macs = 0;
    std::int64_t cross_traffic = 0;  // activations crossing PIM <-> non-PIM
    dnn::KernelClass prev = dnn::KernelClass::kStaticWeight;
    std::int64_t prev_out = 0;
    for (const auto& k : dnn::kernel_walk(cfg)) {
        if (k.cls == dnn::KernelClass::kStaticWeight) {
            static_weights += k.weight_params;
            static_macs += k.work_macs;
        } else if (k.cls == dnn::KernelClass::kDynamicMatrix) {
            dynamic_macs += k.work_macs;
        }
        // Traffic between modules whenever the hardware class changes.
        const bool was_pim = prev == dnn::KernelClass::kStaticWeight;
        const bool is_pim = k.cls == dnn::KernelClass::kStaticWeight;
        if (was_pim != is_pim) cross_traffic += prev_out;
        prev = k.cls;
        prev_out = k.activation_elems;
    }

    util::TextTable t({"Hardware module", "Weights (M)", "GMACs/inference"});
    t.add_row({"ReRAM SFC macro (static FF/proj)",
               util::TextTable::fmt(static_weights / 1e6, 1),
               util::TextTable::fmt(static_macs / 1e9, 1)});
    t.add_row({"SRAM/tensor module (dynamic attn)", "0.0",
               util::TextTable::fmt(dynamic_macs / 1e9, 1)});
    t.print(std::cout);

    std::cout << "\nPIM <-> non-PIM boundary traffic: " << cross_traffic / 1e6
              << " M activations per inference.\n\n";

    // Build the actual heterogeneous system and compare against all-PIM.
    core::HeteroConfig hcfg;
    hcfg.macro_width = 10;
    hcfg.macro_height = 10;
    hcfg.lambda = 10;
    const auto sys = core::build_hetero_system(hcfg);
    std::cout << "Heterogeneous system: " << sys.macro_order.size()
              << " ReRAM chiplets (SFC macro) + " << sys.attention_nodes.size()
              << " attention modules\n"
              << sys.macro_sfc.render() << '\n';

    auto one_seq = cfg;
    one_seq.batch = 1;
    for (const bool all_pim : {false, true}) {
        const auto mapping = core::map_transformer(sys, one_seq, hcfg, all_pim);
        std::cout << (all_pim ? "all-PIM " : "hetero  ");
        if (!mapping.fits) {
            std::cout << "-> does not fit (intermediates exceed the macro: the "
                         "paper's reticle-limit argument)\n";
            continue;
        }
        const auto ev = core::evaluate_hetero(sys, mapping, one_seq);
        std::cout << "-> latency " << ev.latency_ns / 1e3 << " us (compute "
                  << ev.compute_ns / 1e3 << ", writes " << ev.write_ns / 1e3
                  << ", " << mapping.reram_chiplets_used << " chiplets)\n";
    }
    return 0;
}
