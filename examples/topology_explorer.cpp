/// Topology explorer: build any of the four NoI architectures at a chosen
/// size and print its structural profile — ports, links, hop distances,
/// area, yield-driven fabrication cost. Useful for scoping a design before
/// running full workload simulations.
///
///   $ ./example_topology_explorer [width] [height]    (default 10 10)
///     --threads N / --json PATH as in the benches

#include <cstdlib>
#include <iostream>

#include "bench/common.h"
#include "src/cost/models.h"
#include "src/topo/butterfly.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    const std::int32_t w =
        opt.positional.size() > 0 ? std::atoi(opt.positional[0].c_str()) : 10;
    const std::int32_t h =
        opt.positional.size() > 1 ? std::atoi(opt.positional[1].c_str()) : 10;
    if (w < 2 || h < 2 || w > 32 || h > 32) {
        std::cerr << "grid must be between 2x2 and 32x32\n";
        return 1;
    }

    cost::CostParams cp;
    std::cout << "=== NoI architectures at " << w << "x" << h << " ("
              << w * h << " chiplets) ===\n\n";

    struct Profile {
        std::string name;
        std::int32_t links = 0;
        double mean_ports = 0.0;
        std::int32_t max_ports = 0;
        double mean_hops = 0.0;
        std::int32_t diameter = 0;
        double area = 0.0;
        double leakage = 0.0;
        double cost = 0.0;
    };
    const auto profile_of = [&cp](const std::string& name, const topo::Topology& topo,
                                  const noc::RouteTable& routes) {
        Profile pr;
        pr.name = name;
        double ports_sum = 0.0;
        for (const auto& n : topo.nodes()) {
            ports_sum += topo.ports(n.id);
            pr.max_ports = std::max(pr.max_ports, topo.ports(n.id));
        }
        for (topo::NodeId n = 0; n < topo.node_count(); ++n)
            for (const auto d : topo.hop_distances(n))
                pr.diameter = std::max(pr.diameter, d);
        pr.links = topo.link_count();
        pr.mean_ports = ports_sum / topo.node_count();
        pr.mean_hops = routes.mean_hops();
        pr.area = cost::noi_area_mm2(topo, cp);
        pr.leakage = cost::noi_leakage_mw(topo, cp);
        pr.cost = cost::fabrication_cost(topo, cp);
        return pr;
    };

    // Six independent builds (the heavy part is the route table and the
    // all-pairs diameter scan) fanned out on the engine; the four paper
    // architectures come from the fabric cache.
    bench::SweepEngine engine(opt.threads);
    const auto profiles = engine.map(bench::kAllArchs.size() + 2, [&](std::size_t i) {
        if (i < bench::kAllArchs.size()) {
            const auto fabric = engine.cache().get(bench::kAllArchs[i], w, h);
            return profile_of(bench::arch_name(fabric->arch), fabric->topology,
                              fabric->routes);
        }
        const bool donut = i == bench::kAllArchs.size();
        const auto topo =
            donut ? topo::make_butter_donut(w, h) : topo::make_double_butterfly(w, h);
        const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
        return profile_of(donut ? "ButterDonut" : "DoubleButterfly", topo, routes);
    });

    util::TextTable t({"NoI", "Links", "Mean ports", "Max ports", "Mean hops",
                       "Diameter", "Area (mm2)", "Leakage (mW)", "Cost vs ref"});
    for (const auto& pr : profiles) {
        t.add_row({pr.name, std::to_string(pr.links),
                   util::TextTable::fmt(pr.mean_ports), std::to_string(pr.max_ports),
                   util::TextTable::fmt(pr.mean_hops), std::to_string(pr.diameter),
                   util::TextTable::fmt(pr.area, 0),
                   util::TextTable::fmt(pr.leakage, 0),
                   util::TextTable::fmt(pr.cost, 2)});
    }
    t.print(std::cout);

    std::cout << "\nFloret petal map:\n";
    const auto set = core::generate_sfc_set(w, h, bench::default_lambda(w, h));
    std::cout << set.render();

    bench::JsonReport report("topology_explorer");
    report.add_table("profile", t);
    report.write(opt.json_path);
    return 0;
}
