/// Topology explorer: build any of the four NoI architectures at a chosen
/// size and print its structural profile — ports, links, hop distances,
/// area, yield-driven fabrication cost. Useful for scoping a design before
/// running full workload simulations.
///
///   $ ./examples/topology_explorer [width] [height]    (default 10 10)

#include <cstdlib>
#include <iostream>

#include "bench/common.h"
#include "src/cost/models.h"
#include "src/topo/butterfly.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const std::int32_t w = argc > 1 ? std::atoi(argv[1]) : 10;
    const std::int32_t h = argc > 2 ? std::atoi(argv[2]) : 10;
    if (w < 2 || h < 2 || w > 32 || h > 32) {
        std::cerr << "grid must be between 2x2 and 32x32\n";
        return 1;
    }

    cost::CostParams cp;
    std::cout << "=== NoI architectures at " << w << "x" << h << " ("
              << w * h << " chiplets) ===\n\n";

    util::TextTable t({"NoI", "Links", "Mean ports", "Max ports", "Mean hops",
                       "Diameter", "Area (mm2)", "Leakage (mW)", "Cost vs ref"});
    auto add_row = [&](const std::string& name, const topo::Topology& topo,
                       const noc::RouteTable& routes) {
        double ports_sum = 0.0;
        std::int32_t ports_max = 0;
        for (const auto& n : topo.nodes()) {
            ports_sum += topo.ports(n.id);
            ports_max = std::max(ports_max, topo.ports(n.id));
        }
        std::int32_t diameter = 0;
        for (topo::NodeId n = 0; n < topo.node_count(); ++n)
            for (const auto d : topo.hop_distances(n)) diameter = std::max(diameter, d);
        t.add_row({name, std::to_string(topo.link_count()),
                   util::TextTable::fmt(ports_sum / topo.node_count()),
                   std::to_string(ports_max),
                   util::TextTable::fmt(routes.mean_hops()),
                   std::to_string(diameter),
                   util::TextTable::fmt(cost::noi_area_mm2(topo, cp), 0),
                   util::TextTable::fmt(cost::noi_leakage_mw(topo, cp), 0),
                   util::TextTable::fmt(cost::fabrication_cost(topo, cp), 2)});
    };
    for (const auto arch : bench::kAllArchs) {
        auto b = bench::build_arch(arch, w, h);
        add_row(bench::arch_name(b.arch), b.topology(), b.routes());
    }
    // The extended family §II mentions (Floret generalizes to these too).
    for (const auto* extra : {"ButterDonut", "DoubleButterfly"}) {
        const auto topo = std::string(extra) == "ButterDonut"
                              ? topo::make_butter_donut(w, h)
                              : topo::make_double_butterfly(w, h);
        const auto routes = noc::RouteTable::build(topo, noc::RoutingPolicy::kUpDown);
        add_row(extra, topo, routes);
    }
    t.print(std::cout);

    std::cout << "\nFloret petal map:\n";
    const auto set = core::generate_sfc_set(w, h, bench::default_lambda(w, h));
    std::cout << set.render();
    return 0;
}
