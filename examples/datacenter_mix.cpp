/// Datacenter scenario: the paper's Section II workload — multiple
/// concurrent DNN inference tasks (Table II mixes) arriving as a queue on
/// a 100-chiplet 2.5D system. Compares the Floret SFC mapping against the
/// greedy-mapped SIAM mesh on end-to-end makespan, NoI energy, and
/// resource utilization under the dynamic multi-tenant schedule.
///
///   $ ./example_datacenter_mix [mix-name]      (default WL1)
///     --threads N / --json PATH as in the benches

#include <iostream>
#include <string>

#include "bench/common.h"

int main(int argc, char** argv) {
    using namespace floretsim;
    const auto opt = bench::Options::parse(argc, argv);
    const std::string mix_name = opt.positional.empty() ? "WL1" : opt.positional[0];

    const workload::ConcurrentMix* mix = nullptr;
    for (const auto& m : workload::table2())
        if (m.name == mix_name) mix = &m;
    if (mix == nullptr) {
        std::cerr << "unknown mix " << mix_name << " (use WL1..WL5)\n";
        return 1;
    }

    std::cout << "=== " << mix->name << " on a 100-chiplet PIM system ===\n";
    std::cout << "queue:";
    for (const auto& [id, count] : mix->entries) std::cout << ' ' << count << 'x' << id;
    std::cout << "\n\n";

    bench::SweepSpec spec;
    spec.archs = {bench::Arch::kSiamMesh, bench::Arch::kFloret};
    spec.mixes = {*mix};
    spec.evals = {bench::default_eval_config()};
    spec.greedy_max_gap = 2;

    bench::SweepEngine engine(opt.threads);
    const auto sweep = engine.run(spec);

    util::TextTable t({"NoI", "Makespan (kcycles)", "NoI energy (uJ)", "Rounds",
                       "Concurrent tasks (avg)"});
    for (const auto& row : sweep.rows) {
        const auto& run = row.result;
        t.add_row({bench::arch_name(row.point.arch),
                   util::TextTable::fmt(run.total_cycles / 1e3, 1),
                   util::TextTable::fmt(run.total_energy_pj / 1e6, 1),
                   std::to_string(run.rounds),
                   util::TextTable::fmt(static_cast<double>(run.task_rounds) /
                                        static_cast<double>(run.rounds))});
    }
    t.print(std::cout);
    std::cout << "\nFloret admits tasks contiguously along the SFC order, so the\n"
                 "same queue runs at higher concurrency and finishes sooner with\n"
                 "less router+link energy.\n";

    bench::JsonReport report("datacenter_mix");
    report.add_table("comparison", t);
    report.write(opt.json_path);
    return 0;
}
