/// Quickstart: build a 36-chiplet Floret system (the paper's Fig. 1),
/// map a ResNet-18 onto it, and run the flit-level NoI simulation.
///
///   $ ./examples/quickstart
///
/// Walks through the five core steps every FloretSim experiment uses:
/// SFC decomposition -> topology -> partition -> mapping -> simulation.

#include <iostream>
#include <memory>

#include "src/core/evaluator.h"
#include "src/core/floret.h"
#include "src/core/mapper.h"
#include "src/core/sfc.h"
#include "src/dnn/model_zoo.h"
#include "src/pim/partitioner.h"

int main() {
    using namespace floretsim;

    // 1. Decompose a 6x6 chiplet grid into six SFC petals (Fig. 1) with
    //    head/tail placement optimized for the Eq. (1) distance metric.
    const core::SfcSet sfc = core::generate_sfc_set(6, 6, 6);
    std::cout << "Floret petals (H = head, T = tail):\n"
              << sfc.render() << "Eq.(1) d = " << sfc.tail_head_distance() << "\n\n";

    // 2. Materialize the NoI: 2-port routers along each petal, express
    //    links from tails to nearby heads.
    const topo::Topology noi = core::make_floret(sfc);
    std::cout << noi.name() << ": " << noi.node_count() << " chiplets, "
              << noi.link_count() << " links\n\n";

    // 3. Partition a DNN onto ReRAM chiplets. partition_network uses the
    //    exact crossbar geometry; each Conv/FC layer receives a span of
    //    chiplets in dataflow order.
    const dnn::Network net = dnn::build_resnet(18, dnn::Dataset::kCifar10);
    const pim::ReramConfig reram;
    const pim::PartitionPlan plan = pim::partition_network(net, reram);
    std::cout << net.name() << ": " << net.total_params() / 1000000.0
              << "M params -> " << plan.total_chiplets << " chiplets\n";

    // 4. Map along the SFC order: consecutive layers land on path-adjacent
    //    chiplets, so activations ride single-hop links.
    core::TaskSpec task{"quickstart:ResNet18", &net, plan};
    core::FloretMapper mapper(sfc);
    core::MappingStats stats;
    const auto mapped = mapper.map_queue(std::span<const core::TaskSpec>(&task, 1), &stats);
    if (!mapped.front().mapped) {
        std::cerr << "task does not fit on this system\n";
        return 1;
    }
    std::cout << "mapped on chiplets:";
    for (const auto n : mapped.front().nodes) std::cout << ' ' << n;
    std::cout << "\nutilization " << 100.0 * stats.utilization() << "%\n\n";

    // 5. Simulate one inference pass of activation traffic (up*/down*
    //    deadlock-free routing, wormhole switching).
    const auto routes = noc::RouteTable::build(noi, noc::RoutingPolicy::kUpDown);
    core::EvalConfig cfg;
    cfg.traffic_scale = 1.0 / 64.0;
    const core::EvalResult result = core::evaluate_noi(noi, routes, mapped, cfg);
    std::cout << "NoI drain latency: " << result.latency_cycles << " cycles\n"
              << "mean packet latency: " << result.mean_packet_latency << " cycles\n"
              << "NoI dynamic energy: " << result.energy_pj / 1e6 << " uJ (scaled sample)\n"
              << "packets delivered: " << result.packets
              << (result.completed ? "" : "  [INCOMPLETE]") << '\n';
    return 0;
}
